// Package priv implements DEFC privileges over tags and their
// delegation rules (paper §3.1.3 and §3.1.5).
//
// A unit u's run-time privileges are four tag sets:
//
//	O+      — tags u may add to its own label components (t+)
//	O−      — tags u may remove from its own label components (t−)
//	O+auth  — tags whose t+ (and t+auth itself) u may delegate
//	O−auth  — tags whose t− (and t−auth itself) u may delegate
//
// The separation of privilege from privilege delegation (O± vs O±auth)
// is what lets DEFC pin down processing topologies: a unit can be given
// t− without the ability to pass t− on.
package priv

import (
	"errors"
	"fmt"

	"repro/internal/labels"
	"repro/internal/tags"
)

// Right identifies one of the four privilege kinds.
type Right uint8

const (
	// Plus is t+: the right to add t to one's own label components —
	// raising one's secrecy (confidentiality) or endorsing (integrity).
	Plus Right = iota
	// Minus is t−: the right to remove t from one's own label
	// components — declassification (confidentiality) or dropping to
	// lower integrity.
	Minus
	// PlusAuth is t+auth: the right to delegate t+ (and t+auth).
	PlusAuth
	// MinusAuth is t−auth: the right to delegate t− (and t−auth).
	MinusAuth

	numRights = 4
)

// String returns the paper's shorthand for the right.
func (r Right) String() string {
	switch r {
	case Plus:
		return "t+"
	case Minus:
		return "t-"
	case PlusAuth:
		return "t+auth"
	case MinusAuth:
		return "t-auth"
	default:
		return fmt.Sprintf("Right(%d)", uint8(r))
	}
}

// Valid reports whether r names one of the four privilege kinds.
func (r Right) Valid() bool { return r < numRights }

// AuthFor returns the authority right that governs delegation of r:
// PlusAuth for Plus/PlusAuth, MinusAuth for Minus/MinusAuth.
func (r Right) AuthFor() Right {
	switch r {
	case Plus, PlusAuth:
		return PlusAuth
	default:
		return MinusAuth
	}
}

// Grant names a single delegable privilege: right r over tag t.
// Grants are the payload of privilege-carrying event parts (§3.1.5).
type Grant struct {
	Tag   tags.Tag
	Right Right
}

// String renders the grant using the paper's shorthand.
func (g Grant) String() string { return fmt.Sprintf("%v over %v", g.Right, g.Tag) }

// ErrNotAuthorised is returned when a unit attempts an operation its
// privilege sets do not permit.
var ErrNotAuthorised = errors.New("priv: not authorised")

// Owned is the mutable privilege state of one unit. The zero value
// owns nothing. Owned is not safe for concurrent use; the unit runtime
// serialises access per unit.
//
// Representation: one hash set per right. Long-lived service units
// churn privileges at event rate — the Broker's book instance gains
// two delegation-authority grants per order and renounces them as the
// audit window passes, holding thousands of live tags in between —
// so membership updates must be O(1), not a full copy of an immutable
// set. The labels.Set views callers need (label arithmetic over O+
// and O− in the managed router) are materialised on demand and cached
// until the underlying right next changes; those two sets stay small
// and change rarely compared to the auth sets.
type Owned struct {
	sets [numRights]map[tags.Tag]struct{}
	// views lazily caches the labels.Set materialisation of each
	// right; views[r].h == nil means "not cached" for non-empty sets,
	// so an extra valid flag tracks cache state.
	views      [numRights]labels.Set
	viewsValid [numRights]bool
}

// NewOwned builds a privilege state from explicit sets.
func NewOwned(plus, minus, plusAuth, minusAuth labels.Set) *Owned {
	o := &Owned{}
	for r, s := range [...]labels.Set{plus, minus, plusAuth, minusAuth} {
		for _, t := range s.Slice() {
			o.Grant(t, Right(r))
		}
	}
	return o
}

// Set returns the current membership of the given privilege set as an
// immutable labels.Set, materialising (and caching) it on first use
// after a change. Callers must not assume the result reflects later
// Grant/Drop calls.
func (o *Owned) Set(r Right) labels.Set {
	if !r.Valid() {
		return labels.EmptySet
	}
	if !o.viewsValid[r] {
		ts := make([]tags.Tag, 0, len(o.sets[r]))
		for t := range o.sets[r] {
			ts = append(ts, t)
		}
		o.views[r] = labels.NewSet(ts...)
		o.viewsValid[r] = true
	}
	return o.views[r]
}

// Has reports whether the unit holds right r over tag t.
func (o *Owned) Has(t tags.Tag, r Right) bool {
	if !r.Valid() {
		return false
	}
	_, ok := o.sets[r][t]
	return ok
}

// Grant adds right r over t to the owned state. It is the system-level
// primitive used when a tag is created (creator receives t±auth) or a
// delegation is accepted; it performs no authorisation check itself.
func (o *Owned) Grant(t tags.Tag, r Right) {
	if !r.Valid() {
		return
	}
	if o.sets[r] == nil {
		o.sets[r] = make(map[tags.Tag]struct{}, 4)
	}
	if _, ok := o.sets[r][t]; !ok {
		o.sets[r][t] = struct{}{}
		o.viewsValid[r] = false
	}
}

// Drop removes right r over t, if held.
func (o *Owned) Drop(t tags.Tag, r Right) {
	if !r.Valid() {
		return
	}
	if _, ok := o.sets[r][t]; ok {
		delete(o.sets[r], t)
		o.viewsValid[r] = false
	}
}

// SameAs reports whether the two privilege states hold exactly the
// same rights — the drift check for pooled managed instances, without
// materialising set views.
func (o *Owned) SameAs(p *Owned) bool {
	for r := range o.sets {
		if len(o.sets[r]) != len(p.sets[r]) {
			return false
		}
		for t := range o.sets[r] {
			if _, ok := p.sets[r][t]; !ok {
				return false
			}
		}
	}
	return true
}

// GrantAll applies a list of grants (e.g. those carried by an event
// part a unit has just read, §3.1.5).
func (o *Owned) GrantAll(gs []Grant) {
	for _, g := range gs {
		o.Grant(g.Tag, g.Right)
	}
}

// OwnsCompletely reports whether the unit has both t+ and t− —
// "complete privilege over t" in the paper's terms.
func (o *Owned) OwnsCompletely(t tags.Tag) bool {
	return o.Has(t, Plus) && o.Has(t, Minus)
}

// CanDelegate reports whether the unit may delegate right r over tag t
// to another unit: delegation of t± or t±auth requires holding the
// corresponding t±auth.
func (o *Owned) CanDelegate(t tags.Tag, r Right) bool {
	return r.Valid() && o.Has(t, r.AuthFor())
}

// AuthoriseDelegation validates that the unit may attach grant g to an
// event part (attachPrivilegeToPart: "the call succeeds if the caller
// has t^{p auth}").
func (o *Owned) AuthoriseDelegation(g Grant) error {
	if !g.Right.Valid() {
		return fmt.Errorf("%w: invalid right %v", ErrNotAuthorised, g.Right)
	}
	if g.Tag.IsZero() {
		return fmt.Errorf("%w: zero tag", ErrNotAuthorised)
	}
	if !o.CanDelegate(g.Tag, g.Right) {
		return fmt.Errorf("%w: delegating %v requires %v", ErrNotAuthorised, g, g.Right.AuthFor())
	}
	return nil
}

// OnCreateTag grants the creator's rights for a freshly created tag:
// "When a tag t is successfully created for a unit u, then t−auth_u and
// t+auth_u" (§3.1.3). Most creators then self-apply to obtain t±; the
// applySelf flag performs that common step.
func (o *Owned) OnCreateTag(t tags.Tag, applySelf bool) {
	o.Grant(t, PlusAuth)
	o.Grant(t, MinusAuth)
	if applySelf {
		// Self-delegation is authorised by the auth rights just granted.
		o.Grant(t, Plus)
		o.Grant(t, Minus)
	}
}

// Clone returns an independent copy of the privilege state. Cloning
// happens on the rare control-plane paths (instance creation, pooled
// instance reset), so the O(n) map copy is acceptable.
func (o *Owned) Clone() *Owned {
	c := &Owned{}
	for r, s := range o.sets {
		if len(s) == 0 {
			continue
		}
		c.sets[r] = make(map[tags.Tag]struct{}, len(s))
		for t := range s {
			c.sets[r][t] = struct{}{}
		}
	}
	return c
}

// String summarises the four sets. It builds throwaway views rather
// than going through Set so that debug formatting never mutates the
// view cache (keeping String a pure reader, as it was before the
// map-backed representation).
func (o *Owned) String() string {
	view := func(r Right) labels.Set {
		ts := make([]tags.Tag, 0, len(o.sets[r]))
		for t := range o.sets[r] {
			ts = append(ts, t)
		}
		return labels.NewSet(ts...)
	}
	return fmt.Sprintf("O+=%s O-=%s O+auth=%s O-auth=%s",
		view(Plus), view(Minus), view(PlusAuth), view(MinusAuth))
}
