// Package priv implements DEFC privileges over tags and their
// delegation rules (paper §3.1.3 and §3.1.5).
//
// A unit u's run-time privileges are four tag sets:
//
//	O+      — tags u may add to its own label components (t+)
//	O−      — tags u may remove from its own label components (t−)
//	O+auth  — tags whose t+ (and t+auth itself) u may delegate
//	O−auth  — tags whose t− (and t−auth itself) u may delegate
//
// The separation of privilege from privilege delegation (O± vs O±auth)
// is what lets DEFC pin down processing topologies: a unit can be given
// t− without the ability to pass t− on.
package priv

import (
	"errors"
	"fmt"

	"repro/internal/labels"
	"repro/internal/tags"
)

// Right identifies one of the four privilege kinds.
type Right uint8

const (
	// Plus is t+: the right to add t to one's own label components —
	// raising one's secrecy (confidentiality) or endorsing (integrity).
	Plus Right = iota
	// Minus is t−: the right to remove t from one's own label
	// components — declassification (confidentiality) or dropping to
	// lower integrity.
	Minus
	// PlusAuth is t+auth: the right to delegate t+ (and t+auth).
	PlusAuth
	// MinusAuth is t−auth: the right to delegate t− (and t−auth).
	MinusAuth

	numRights = 4
)

// String returns the paper's shorthand for the right.
func (r Right) String() string {
	switch r {
	case Plus:
		return "t+"
	case Minus:
		return "t-"
	case PlusAuth:
		return "t+auth"
	case MinusAuth:
		return "t-auth"
	default:
		return fmt.Sprintf("Right(%d)", uint8(r))
	}
}

// Valid reports whether r names one of the four privilege kinds.
func (r Right) Valid() bool { return r < numRights }

// AuthFor returns the authority right that governs delegation of r:
// PlusAuth for Plus/PlusAuth, MinusAuth for Minus/MinusAuth.
func (r Right) AuthFor() Right {
	switch r {
	case Plus, PlusAuth:
		return PlusAuth
	default:
		return MinusAuth
	}
}

// Grant names a single delegable privilege: right r over tag t.
// Grants are the payload of privilege-carrying event parts (§3.1.5).
type Grant struct {
	Tag   tags.Tag
	Right Right
}

// String renders the grant using the paper's shorthand.
func (g Grant) String() string { return fmt.Sprintf("%v over %v", g.Right, g.Tag) }

// ErrNotAuthorised is returned when a unit attempts an operation its
// privilege sets do not permit.
var ErrNotAuthorised = errors.New("priv: not authorised")

// Owned is the mutable privilege state of one unit. The zero value
// owns nothing. Owned is not safe for concurrent use; the unit runtime
// serialises access per unit.
type Owned struct {
	sets [numRights]labels.Set
}

// NewOwned builds a privilege state from explicit sets.
func NewOwned(plus, minus, plusAuth, minusAuth labels.Set) *Owned {
	o := &Owned{}
	o.sets[Plus] = plus
	o.sets[Minus] = minus
	o.sets[PlusAuth] = plusAuth
	o.sets[MinusAuth] = minusAuth
	return o
}

// Set returns the current membership of the given privilege set.
func (o *Owned) Set(r Right) labels.Set {
	if !r.Valid() {
		return labels.EmptySet
	}
	return o.sets[r]
}

// Has reports whether the unit holds right r over tag t.
func (o *Owned) Has(t tags.Tag, r Right) bool {
	return r.Valid() && o.sets[r].Has(t)
}

// Grant adds right r over t to the owned state. It is the system-level
// primitive used when a tag is created (creator receives t±auth) or a
// delegation is accepted; it performs no authorisation check itself.
func (o *Owned) Grant(t tags.Tag, r Right) {
	if !r.Valid() {
		return
	}
	o.sets[r] = o.sets[r].Add(t)
}

// Drop removes right r over t, if held.
func (o *Owned) Drop(t tags.Tag, r Right) {
	if !r.Valid() {
		return
	}
	o.sets[r] = o.sets[r].Remove(t)
}

// GrantAll applies a list of grants (e.g. those carried by an event
// part a unit has just read, §3.1.5).
func (o *Owned) GrantAll(gs []Grant) {
	for _, g := range gs {
		o.Grant(g.Tag, g.Right)
	}
}

// OwnsCompletely reports whether the unit has both t+ and t− —
// "complete privilege over t" in the paper's terms.
func (o *Owned) OwnsCompletely(t tags.Tag) bool {
	return o.Has(t, Plus) && o.Has(t, Minus)
}

// CanDelegate reports whether the unit may delegate right r over tag t
// to another unit: delegation of t± or t±auth requires holding the
// corresponding t±auth.
func (o *Owned) CanDelegate(t tags.Tag, r Right) bool {
	return r.Valid() && o.Has(t, r.AuthFor())
}

// AuthoriseDelegation validates that the unit may attach grant g to an
// event part (attachPrivilegeToPart: "the call succeeds if the caller
// has t^{p auth}").
func (o *Owned) AuthoriseDelegation(g Grant) error {
	if !g.Right.Valid() {
		return fmt.Errorf("%w: invalid right %v", ErrNotAuthorised, g.Right)
	}
	if g.Tag.IsZero() {
		return fmt.Errorf("%w: zero tag", ErrNotAuthorised)
	}
	if !o.CanDelegate(g.Tag, g.Right) {
		return fmt.Errorf("%w: delegating %v requires %v", ErrNotAuthorised, g, g.Right.AuthFor())
	}
	return nil
}

// OnCreateTag grants the creator's rights for a freshly created tag:
// "When a tag t is successfully created for a unit u, then t−auth_u and
// t+auth_u" (§3.1.3). Most creators then self-apply to obtain t±; the
// applySelf flag performs that common step.
func (o *Owned) OnCreateTag(t tags.Tag, applySelf bool) {
	o.Grant(t, PlusAuth)
	o.Grant(t, MinusAuth)
	if applySelf {
		// Self-delegation is authorised by the auth rights just granted.
		o.Grant(t, Plus)
		o.Grant(t, Minus)
	}
}

// Clone returns an independent copy of the privilege state. Sets are
// immutable, so the copy is shallow and O(1) per set.
func (o *Owned) Clone() *Owned {
	c := &Owned{}
	c.sets = o.sets
	return c
}

// String summarises the four sets.
func (o *Owned) String() string {
	return fmt.Sprintf("O+=%s O-=%s O+auth=%s O-auth=%s",
		o.sets[Plus], o.sets[Minus], o.sets[PlusAuth], o.sets[MinusAuth])
}
