package priv

import (
	"errors"
	"testing"

	"repro/internal/labels"
	"repro/internal/tags"
)

func newTag(t *testing.T, store *tags.Store, name string) tags.Tag {
	t.Helper()
	return store.Create(name, "test")
}

func TestRightString(t *testing.T) {
	cases := map[Right]string{
		Plus: "t+", Minus: "t-", PlusAuth: "t+auth", MinusAuth: "t-auth",
	}
	for r, want := range cases {
		if got := r.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", r, got, want)
		}
	}
	if Right(9).Valid() {
		t.Error("Right(9) reported valid")
	}
}

func TestAuthFor(t *testing.T) {
	if Plus.AuthFor() != PlusAuth || PlusAuth.AuthFor() != PlusAuth {
		t.Error("AuthFor(+) != +auth")
	}
	if Minus.AuthFor() != MinusAuth || MinusAuth.AuthFor() != MinusAuth {
		t.Error("AuthFor(-) != -auth")
	}
}

func TestGrantAndHas(t *testing.T) {
	s := tags.NewStore(1)
	tg := newTag(t, s, "x")
	o := &Owned{}
	if o.Has(tg, Plus) {
		t.Fatal("empty Owned has privilege")
	}
	o.Grant(tg, Plus)
	if !o.Has(tg, Plus) || o.Has(tg, Minus) {
		t.Fatal("Grant gave wrong rights")
	}
	o.Drop(tg, Plus)
	if o.Has(tg, Plus) {
		t.Fatal("Drop did not remove right")
	}
}

func TestOnCreateTagGrantsAuthOnly(t *testing.T) {
	s := tags.NewStore(2)
	tg := newTag(t, s, "x")
	o := &Owned{}
	o.OnCreateTag(tg, false)
	if !o.Has(tg, PlusAuth) || !o.Has(tg, MinusAuth) {
		t.Fatal("creator lacks t±auth")
	}
	if o.Has(tg, Plus) || o.Has(tg, Minus) {
		t.Fatal("creator granted t± without self-apply")
	}
}

func TestOnCreateTagSelfApply(t *testing.T) {
	s := tags.NewStore(3)
	tg := newTag(t, s, "x")
	o := &Owned{}
	o.OnCreateTag(tg, true)
	for _, r := range []Right{Plus, Minus, PlusAuth, MinusAuth} {
		if !o.Has(tg, r) {
			t.Fatalf("creator lacks %v after self-apply", r)
		}
	}
	if !o.OwnsCompletely(tg) {
		t.Fatal("OwnsCompletely false for full owner")
	}
}

func TestDelegationRequiresAuth(t *testing.T) {
	s := tags.NewStore(4)
	tg := newTag(t, s, "x")

	// A unit holding only t− cannot delegate it (this is the topology
	// enforcement of §3.1.3: the Regulator can declassify but cannot
	// pass declassification to the Broker).
	holder := &Owned{}
	holder.Grant(tg, Minus)
	if holder.CanDelegate(tg, Minus) {
		t.Fatal("t− holder can delegate without t−auth")
	}
	if err := holder.AuthoriseDelegation(Grant{Tag: tg, Right: Minus}); err == nil {
		t.Fatal("AuthoriseDelegation succeeded without auth")
	} else if !errors.Is(err, ErrNotAuthorised) {
		t.Fatalf("error = %v, want ErrNotAuthorised", err)
	}

	// With t−auth the same delegation is allowed, including delegating
	// the auth itself.
	holder.Grant(tg, MinusAuth)
	if !holder.CanDelegate(tg, Minus) || !holder.CanDelegate(tg, MinusAuth) {
		t.Fatal("t−auth holder cannot delegate")
	}
	if err := holder.AuthoriseDelegation(Grant{Tag: tg, Right: Minus}); err != nil {
		t.Fatalf("AuthoriseDelegation: %v", err)
	}
	// +auth does not follow from −auth.
	if holder.CanDelegate(tg, Plus) || holder.CanDelegate(tg, PlusAuth) {
		t.Fatal("−auth granted + delegation")
	}
}

func TestAuthoriseDelegationRejectsZeroAndInvalid(t *testing.T) {
	o := &Owned{}
	if err := o.AuthoriseDelegation(Grant{Right: Plus}); err == nil {
		t.Fatal("zero tag accepted")
	}
	s := tags.NewStore(5)
	tg := newTag(t, s, "x")
	if err := o.AuthoriseDelegation(Grant{Tag: tg, Right: Right(7)}); err == nil {
		t.Fatal("invalid right accepted")
	}
}

func TestGrantAll(t *testing.T) {
	s := tags.NewStore(6)
	a, b := newTag(t, s, "a"), newTag(t, s, "b")
	o := &Owned{}
	o.GrantAll([]Grant{{Tag: a, Right: Plus}, {Tag: b, Right: MinusAuth}})
	if !o.Has(a, Plus) || !o.Has(b, MinusAuth) {
		t.Fatal("GrantAll missed a grant")
	}
}

func TestCloneIsIndependent(t *testing.T) {
	s := tags.NewStore(7)
	a, b := newTag(t, s, "a"), newTag(t, s, "b")
	o := &Owned{}
	o.Grant(a, Plus)
	c := o.Clone()
	c.Grant(b, Minus)
	o.Drop(a, Plus)
	if !c.Has(a, Plus) {
		t.Fatal("clone affected by original's Drop")
	}
	if o.Has(b, Minus) {
		t.Fatal("original affected by clone's Grant")
	}
}

func TestNewOwnedAndSet(t *testing.T) {
	s := tags.NewStore(8)
	a := newTag(t, s, "a")
	o := NewOwned(labels.NewSet(a), labels.EmptySet, labels.EmptySet, labels.NewSet(a))
	if !o.Has(a, Plus) || !o.Has(a, MinusAuth) || o.Has(a, Minus) {
		t.Fatal("NewOwned populated wrong sets")
	}
	if o.Set(Plus).Len() != 1 || o.Set(Right(9)).Len() != 0 {
		t.Fatal("Set accessor wrong")
	}
}

func TestGrantIgnoresInvalidRight(t *testing.T) {
	s := tags.NewStore(9)
	a := newTag(t, s, "a")
	o := &Owned{}
	o.Grant(a, Right(200))
	o.Drop(a, Right(200))
	for _, r := range []Right{Plus, Minus, PlusAuth, MinusAuth} {
		if o.Has(a, r) {
			t.Fatal("invalid Grant leaked into a real set")
		}
	}
}
