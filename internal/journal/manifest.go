package journal

// The journal manifest pins the shard count the directory was written
// with. Segment and checkpoint names carry each file's own shard
// index, but an idle shard leaves no files at all — so the file set
// alone cannot prove how many shards the writing pool had, and
// recovering a 2-shard journal into a 4-shard pool would route every
// symbol's NEW orders to a different shard than the one holding its
// recovered book (invariant 13). The manifest makes the count explicit
// and lets recovery demand an exact match.

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
)

const (
	manifestName  = "manifest.dfj"
	manifestMagic = "DFJM"
	manifestLen   = 16 // magic + u32 version + u32 shards + u32 crc
)

// WriteManifest publishes the directory's shard count via the same
// tmp → sync → rename → dir-sync protocol checkpoints use, so a torn
// write leaves no manifest rather than a corrupt one.
func WriteManifest(fs FS, shards int) error {
	if shards <= 0 {
		return fmt.Errorf("journal: manifest shard count %d", shards)
	}
	b := make([]byte, manifestLen)
	copy(b[0:4], manifestMagic)
	binary.LittleEndian.PutUint32(b[4:8], version)
	binary.LittleEndian.PutUint32(b[8:12], uint32(shards))
	binary.LittleEndian.PutUint32(b[12:16], crc32.ChecksumIEEE(b[0:12]))
	tmp := manifestName + ".tmp"
	f, err := fs.Create(tmp)
	if err != nil {
		return fmt.Errorf("journal: manifest: %w", err)
	}
	if _, err := f.Write(b); err != nil {
		f.Close()
		return fmt.Errorf("journal: manifest: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("journal: manifest: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("journal: manifest: %w", err)
	}
	if err := fs.Rename(tmp, manifestName); err != nil {
		return fmt.Errorf("journal: manifest: %w", err)
	}
	if err := fs.SyncDir(); err != nil {
		return fmt.Errorf("journal: manifest: %w", err)
	}
	return nil
}

// ReadManifest loads the directory's shard count. ok is false when no
// manifest exists (an empty or pre-manifest directory); a manifest
// that exists but does not validate is an error, not a fallback —
// guessing a shard count risks misrouting every recovered symbol.
func ReadManifest(fs FS) (shards int, ok bool, err error) {
	b, err := fs.ReadFile(manifestName)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return 0, false, nil
		}
		return 0, false, fmt.Errorf("journal: manifest: %w", err)
	}
	if len(b) != manifestLen || string(b[0:4]) != manifestMagic ||
		binary.LittleEndian.Uint32(b[4:8]) != version ||
		crc32.ChecksumIEEE(b[0:12]) != binary.LittleEndian.Uint32(b[12:16]) {
		return 0, false, fmt.Errorf("journal: manifest: corrupt (%d bytes)", len(b))
	}
	n := binary.LittleEndian.Uint32(b[8:12])
	if n == 0 || n > 1<<16 {
		return 0, false, fmt.Errorf("journal: manifest: implausible shard count %d", n)
	}
	return int(n), true, nil
}
