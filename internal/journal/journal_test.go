package journal

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"
)

func payload(lsn uint64) []byte {
	return []byte(fmt.Sprintf("record-%06d-payload", lsn))
}

// appendN appends records with LSNs base+1..base+n and flushes.
func appendN(t *testing.T, w *Writer, base uint64, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		lsn, ok := w.Append(payload(base + uint64(i) + 1))
		if !ok {
			t.Fatalf("append %d shed unexpectedly", i)
		}
		if lsn != base+uint64(i)+1 {
			t.Fatalf("append %d: lsn %d, want %d", i, lsn, base+uint64(i)+1)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}
}

func mustRecover(t *testing.T, fs FS, shard int) *Recovered {
	t.Helper()
	rec, err := Recover(fs, shard)
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	return rec
}

func TestWriterRecoverRoundTrip(t *testing.T) {
	fs := NewMemFS()
	w := NewWriter(fs, 3, Options{})
	appendN(t, w, 0, 25)
	if err := w.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	rec := mustRecover(t, fs, 3)
	if rec.CheckpointLSN != 0 || rec.Checkpoint != nil {
		t.Fatalf("unexpected checkpoint: lsn=%d", rec.CheckpointLSN)
	}
	if len(rec.Records) != 25 || rec.LastLSN != 25 {
		t.Fatalf("got %d records, last=%d", len(rec.Records), rec.LastLSN)
	}
	for i, r := range rec.Records {
		if !bytes.Equal(r, payload(uint64(i)+1)) {
			t.Fatalf("record %d mismatch: %q", i, r)
		}
	}
	if len(rec.Report.Faults) != 0 {
		t.Fatalf("clean journal reported faults: %v", rec.Report.Faults)
	}
	m := w.Metrics()
	if m.Appended != 25 || m.Shed != 0 {
		t.Fatalf("metrics: %+v", m)
	}
}

func TestCloseIsIdempotentAndConcurrent(t *testing.T) {
	fs := NewMemFS()
	w := NewWriter(fs, 0, Options{})
	appendN(t, w, 0, 3)
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := w.Close(); err != nil {
				t.Errorf("close: %v", err)
			}
		}()
	}
	wg.Wait()
	rec := mustRecover(t, fs, 0)
	if len(rec.Records) != 3 {
		t.Fatalf("got %d records after close", len(rec.Records))
	}
}

func TestCheckpointRotationRetentionAndTail(t *testing.T) {
	fs := NewMemFS()
	w := NewWriter(fs, 1, Options{})
	appendN(t, w, 0, 10)
	if !w.Checkpoint(10, []byte("state@10")) {
		t.Fatal("checkpoint 10 refused")
	}
	appendN(t, w, 10, 10)
	if !w.Checkpoint(20, []byte("state@20")) {
		t.Fatal("checkpoint 20 refused")
	}
	appendN(t, w, 20, 5)
	if err := w.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	m := w.Metrics()
	if m.CheckpointsWritten != 2 {
		t.Fatalf("checkpoints written: %+v", m)
	}

	rec := mustRecover(t, fs, 1)
	if rec.CheckpointLSN != 20 || string(rec.Checkpoint) != "state@20" {
		t.Fatalf("checkpoint: lsn=%d payload=%q", rec.CheckpointLSN, rec.Checkpoint)
	}
	if len(rec.Records) != 5 || rec.LastLSN != 25 {
		t.Fatalf("tail: %d records, last=%d", len(rec.Records), rec.LastLSN)
	}
	for i, r := range rec.Records {
		if !bytes.Equal(r, payload(uint64(i)+21)) {
			t.Fatalf("tail record %d mismatch: %q", i, r)
		}
	}

	// Retention: two checkpoints and the segments they need; seg-0 is
	// superseded by checkpoint 10 and pruned.
	names, _ := fs.List()
	want := map[string]bool{
		ckptName(1, 10): true, ckptName(1, 20): true,
		segName(1, 10): true, segName(1, 20): true,
	}
	if len(names) != len(want) {
		t.Fatalf("retained files: %v", names)
	}
	for _, n := range names {
		if !want[n] {
			t.Fatalf("unexpected retained file %s (all: %v)", n, names)
		}
	}
}

func TestTornTailTruncatesToLastValidFrame(t *testing.T) {
	build := func() (*MemFS, string) {
		fs := NewMemFS()
		w := NewWriter(fs, 0, Options{})
		appendN(t, w, 0, 8)
		w.Close()
		return fs, segName(0, 0)
	}
	fs, seg := build()
	full := fs.Size(seg)
	frame := frameHdrLen + len(payload(1)) // fixed-size payloads

	// Cut the file at every byte inside the final frame: recovery must
	// keep exactly 7 records and flag a torn tail.
	for cut := full - frame + 1; cut < full; cut++ {
		fs, seg := build()
		if err := fs.Truncate(seg, int64(cut)); err != nil {
			t.Fatalf("truncate to %d: %v", cut, err)
		}
		rec := mustRecover(t, fs, 0)
		if len(rec.Records) != 7 || rec.LastLSN != 7 {
			t.Fatalf("cut=%d: %d records, last=%d", cut, len(rec.Records), rec.LastLSN)
		}
		if rec.Report.TornTail != 1 || !errors.Is(rec.Report.Faults[0], ErrTornTail) {
			t.Fatalf("cut=%d: report %+v", cut, rec.Report)
		}
	}

	// Cut inside the segment header: nothing recoverable, still no panic.
	fs, seg = build()
	fs.Truncate(seg, segHeaderLen-3)
	rec := mustRecover(t, fs, 0)
	if len(rec.Records) != 0 || rec.Report.TornTail != 1 {
		t.Fatalf("header cut: %d records, report %+v", len(rec.Records), rec.Report)
	}
}

func TestBadCRCStopsScan(t *testing.T) {
	fs := NewMemFS()
	w := NewWriter(fs, 0, Options{})
	appendN(t, w, 0, 8)
	w.Close()
	seg := segName(0, 0)
	frame := frameHdrLen + len(payload(1))
	// Flip a payload byte in the 4th frame (not the final one).
	off := segHeaderLen + 3*frame + frameHdrLen + 2
	if !fs.Corrupt(seg, off, 0x40) {
		t.Fatalf("corrupt at %d failed", off)
	}
	rec := mustRecover(t, fs, 0)
	if len(rec.Records) != 3 || rec.LastLSN != 3 {
		t.Fatalf("%d records, last=%d", len(rec.Records), rec.LastLSN)
	}
	if rec.Report.BadCRC != 1 || !errors.Is(rec.Report.Faults[0], ErrBadCRC) {
		t.Fatalf("report %+v", rec.Report)
	}
}

func TestPartialCheckpointFallsBack(t *testing.T) {
	build := func() *MemFS {
		fs := NewMemFS()
		w := NewWriter(fs, 2, Options{})
		appendN(t, w, 0, 10)
		w.Checkpoint(10, []byte("state@10"))
		appendN(t, w, 10, 10)
		w.Checkpoint(20, []byte("state@20"))
		appendN(t, w, 20, 5)
		w.Close()
		return fs
	}

	// Corrupt the newest checkpoint's payload: recovery falls back to
	// checkpoint 10 and replays records 11..25 across both segments.
	fs := build()
	if !fs.Corrupt(ckptName(2, 20), ckptHeaderLen+1, 0x01) {
		t.Fatal("corrupt ckpt failed")
	}
	rec := mustRecover(t, fs, 2)
	if rec.CheckpointLSN != 10 || string(rec.Checkpoint) != "state@10" {
		t.Fatalf("fallback checkpoint: lsn=%d payload=%q", rec.CheckpointLSN, rec.Checkpoint)
	}
	if len(rec.Records) != 15 || rec.LastLSN != 25 {
		t.Fatalf("tail: %d records, last=%d", len(rec.Records), rec.LastLSN)
	}
	if rec.Report.CheckpointFallbacks != 1 || !errors.Is(rec.Report.Faults[0], ErrPartialCheckpoint) {
		t.Fatalf("report %+v", rec.Report)
	}

	// Truncate it instead: same fallback.
	fs = build()
	fs.Truncate(ckptName(2, 20), ckptHeaderLen+3)
	rec = mustRecover(t, fs, 2)
	if rec.CheckpointLSN != 10 || rec.Report.CheckpointFallbacks != 1 {
		t.Fatalf("truncated ckpt: lsn=%d report %+v", rec.CheckpointLSN, rec.Report)
	}

	// Corrupt both: recovery degrades to the empty state but the full
	// journal is gone (segment 0 was pruned) — no tail, two fallbacks,
	// still no panic.
	fs = build()
	fs.Corrupt(ckptName(2, 20), ckptHeaderLen+1, 0x01)
	fs.Corrupt(ckptName(2, 10), ckptHeaderLen+1, 0x01)
	rec = mustRecover(t, fs, 2)
	if rec.CheckpointLSN != 0 || rec.Checkpoint != nil {
		t.Fatalf("double fallback: lsn=%d", rec.CheckpointLSN)
	}
	if rec.Report.CheckpointFallbacks != 2 || !rec.Report.SegmentGap {
		t.Fatalf("double fallback report: %+v", rec.Report)
	}
	// Repair removed the corrupt checkpoints and the unreachable
	// segments: a second recovery sees a clean empty journal.
	if rec.Report.Repaired == 0 {
		t.Fatalf("no repair recorded: %+v", rec.Report)
	}
	rec = mustRecover(t, fs, 2)
	if rec.CheckpointLSN != 0 || len(rec.Records) != 0 || len(rec.Report.Faults) != 0 {
		t.Fatalf("post-repair recovery not clean: %+v", rec.Report)
	}
}

// gateFS blocks every file write while the test holds the gate, so
// the committer can be pinned mid-batch and the staging ring filled.
type gateFS struct {
	FS
	gate sync.Mutex
}

type gateFile struct {
	File
	fs *gateFS
}

func (g *gateFS) Create(name string) (File, error) {
	f, err := g.FS.Create(name)
	if err != nil {
		return nil, err
	}
	return &gateFile{File: f, fs: g}, nil
}

func (f *gateFile) Write(p []byte) (int, error) {
	f.fs.gate.Lock()
	f.fs.gate.Unlock()
	return f.File.Write(p)
}

func TestShedAndMarkGapStopsRecovery(t *testing.T) {
	mem := NewMemFS()
	gfs := &gateFS{FS: mem}
	gfs.gate.Lock()
	w := NewWriter(gfs, 0, Options{StagingCap: 4})

	// First record is drained into a batch that blocks on the gate.
	w.Append(payload(1))
	waitDraining := func() {
		for {
			w.mu.Lock()
			idle := len(w.buf) == 0 && w.inFlight
			w.mu.Unlock()
			if idle {
				return
			}
		}
	}
	waitDraining()

	// Fill the staging ring, then overflow it: 2..5 accepted, 6..8 shed.
	var firstShed uint64
	for lsn := uint64(2); lsn <= 8; lsn++ {
		got, ok := w.Append(payload(lsn))
		if got != lsn {
			t.Fatalf("lsn %d, want %d", got, lsn)
		}
		if wantOK := lsn <= 5; ok != wantOK {
			t.Fatalf("append %d: ok=%v", lsn, ok)
		}
		if !ok && firstShed == 0 {
			firstShed = lsn
		}
	}
	gfs.gate.Unlock()
	if err := w.Flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}
	// The next accepted append carries the gap marker ahead of it.
	if _, ok := w.Append(payload(9)); !ok {
		t.Fatal("post-gap append shed")
	}
	if err := w.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	m := w.Metrics()
	if m.Shed != 3 || m.GapMarkers != 1 {
		t.Fatalf("metrics: %+v", m)
	}

	// Recovery replays 1..5 and stops at the gap: record 9 was written
	// but is beyond the marked loss, so it must not be replayed.
	rec := mustRecover(t, mem, 0)
	if len(rec.Records) != 5 || rec.LastLSN != 5 {
		t.Fatalf("%d records, last=%d", len(rec.Records), rec.LastLSN)
	}
	if !rec.Report.GapStop || !errors.Is(rec.Report.Faults[0], ErrShedGap) {
		t.Fatalf("report %+v", rec.Report)
	}
}

func TestCheckpointHealsShedGap(t *testing.T) {
	mem := NewMemFS()
	gfs := &gateFS{FS: mem}
	gfs.gate.Lock()
	w := NewWriter(gfs, 0, Options{StagingCap: 2})
	w.Append(payload(1))
	for {
		w.mu.Lock()
		idle := len(w.buf) == 0 && w.inFlight
		w.mu.Unlock()
		if idle {
			break
		}
	}
	w.Append(payload(2))
	w.Append(payload(3))
	w.Append(payload(4)) // shed
	w.Append(payload(5)) // shed
	gfs.gate.Unlock()
	w.Flush()
	// A checkpoint after the loss is a full state snapshot: it heals
	// the gap, and records after it replay normally.
	w.Checkpoint(5, []byte("healed@5"))
	w.Append(payload(6))
	w.Close()

	rec := mustRecover(t, mem, 0)
	if rec.CheckpointLSN != 5 || string(rec.Checkpoint) != "healed@5" {
		t.Fatalf("checkpoint: lsn=%d payload=%q", rec.CheckpointLSN, rec.Checkpoint)
	}
	if len(rec.Records) != 1 || !bytes.Equal(rec.Records[0], payload(6)) || rec.LastLSN != 6 {
		t.Fatalf("tail: %d records, last=%d", len(rec.Records), rec.LastLSN)
	}
	if rec.Report.GapStop {
		t.Fatalf("healed gap still stops recovery: %+v", rec.Report)
	}
}

func TestStartAtResumesLSNs(t *testing.T) {
	fs := NewMemFS()
	w := NewWriter(fs, 0, Options{})
	appendN(t, w, 0, 5)
	w.Checkpoint(5, []byte("state@5"))
	appendN(t, w, 5, 2)
	w.Close()

	rec := mustRecover(t, fs, 0)
	if rec.LastLSN != 7 {
		t.Fatalf("last=%d", rec.LastLSN)
	}

	// A new writer resumes where recovery left off; its records chain
	// onto the recovered state without colliding.
	w2 := NewWriter(fs, 0, Options{})
	w2.StartAt(rec.LastLSN)
	if lsn, ok := w2.Append(payload(8)); !ok || lsn != 8 {
		t.Fatalf("resume append: lsn=%d ok=%v", lsn, ok)
	}
	w2.Flush()
	w2.Checkpoint(8, []byte("state@8"))
	appendN(t, w2, 8, 2)
	w2.Close()

	rec2 := mustRecover(t, fs, 0)
	if rec2.CheckpointLSN != 8 || string(rec2.Checkpoint) != "state@8" {
		t.Fatalf("resumed checkpoint: lsn=%d", rec2.CheckpointLSN)
	}
	if len(rec2.Records) != 2 || rec2.LastLSN != 10 {
		t.Fatalf("resumed tail: %d records, last=%d", len(rec2.Records), rec2.LastLSN)
	}
}

// TestCrashSweep kills the filesystem at a sweep of byte budgets —
// tearing segment frames, checkpoint tmp files, and renames at
// arbitrary offsets — and requires recovery to always yield a clean
// prefix of the appended history, never a panic, never divergence.
func TestCrashSweep(t *testing.T) {
	const n = 30
	run := func(fs FS) {
		w := NewWriter(fs, 0, Options{})
		for i := uint64(1); i <= n; i++ {
			w.Append(payload(i))
			if i%10 == 0 {
				w.Flush()
				w.Checkpoint(i, []byte(fmt.Sprintf("state@%d", i)))
			}
		}
		w.Flush()
		w.Close()
	}

	// Reference run to size the sweep.
	ref := NewMemFS()
	run(ref)
	total := 0
	names, _ := ref.List()
	for _, nm := range names {
		total += ref.Size(nm)
	}
	// Checkpoint blobs and pruned files add bytes beyond what survives;
	// pad the sweep to cover every write the run issues.
	total = total * 3

	for kill := 0; kill <= total; kill += 11 {
		mem := NewMemFS()
		cfs := NewCrashFS(mem)
		cfs.KillAfter(int64(kill))
		run(cfs)

		rec, err := Recover(mem, 0)
		if err != nil {
			t.Fatalf("kill=%d: recover: %v", kill, err)
		}
		if rec.CheckpointLSN%10 != 0 || rec.CheckpointLSN > n {
			t.Fatalf("kill=%d: checkpoint lsn %d", kill, rec.CheckpointLSN)
		}
		if rec.CheckpointLSN > 0 {
			want := fmt.Sprintf("state@%d", rec.CheckpointLSN)
			if string(rec.Checkpoint) != want {
				t.Fatalf("kill=%d: checkpoint payload %q, want %q", kill, rec.Checkpoint, want)
			}
		}
		if rec.LastLSN > n {
			t.Fatalf("kill=%d: last=%d beyond history", kill, rec.LastLSN)
		}
		for i, r := range rec.Records {
			want := payload(rec.CheckpointLSN + uint64(i) + 1)
			if !bytes.Equal(r, want) {
				t.Fatalf("kill=%d: record %d = %q, want %q", kill, i, r, want)
			}
		}
	}
}

// resumed is a payload distinguishable from the pre-damage history,
// so the resume tests can prove post-recovery records round-trip.
func resumed(lsn uint64) []byte {
	return []byte(fmt.Sprintf("resumed-%06d-payload", lsn))
}

// TestRecoverRepairsDamageForResume pins the crash→recover→run→crash
// path: recovery physically heals the journal (truncating the damaged
// tail), so records appended by a resumed writer — which land in a
// fresh segment past the damage — are fully recoverable by the NEXT
// recovery instead of being stranded behind the old torn frame.
func TestRecoverRepairsDamageForResume(t *testing.T) {
	frame := frameHdrLen + len(payload(1)) // fixed-size payloads

	resumeAndRecheck := func(t *testing.T, fs *MemFS, rec *Recovered, total uint64) {
		t.Helper()
		w := NewWriter(fs, 0, Options{})
		w.StartAt(rec.LastLSN)
		for lsn := rec.LastLSN + 1; lsn <= total; lsn++ {
			if got, ok := w.Append(resumed(lsn)); !ok || got != lsn {
				t.Fatalf("resume append: lsn=%d ok=%v", got, ok)
			}
		}
		if err := w.Close(); err != nil {
			t.Fatalf("resumed close: %v", err)
		}
		rec2 := mustRecover(t, fs, 0)
		if rec2.LastLSN != total || uint64(len(rec2.Records)) != total-rec2.CheckpointLSN {
			t.Fatalf("post-resume recovery lost records: last=%d (%d records), want last=%d",
				rec2.LastLSN, len(rec2.Records), total)
		}
		if n := len(rec2.Report.Faults); n != 0 {
			t.Fatalf("post-resume recovery still faulting after repair: %v", rec2.Report.Faults)
		}
		for i, r := range rec2.Records {
			lsn := rec2.CheckpointLSN + uint64(i) + 1
			want := payload(lsn)
			if lsn > rec.LastLSN {
				want = resumed(lsn)
			}
			if !bytes.Equal(r, want) {
				t.Fatalf("record at LSN %d = %q, want %q", lsn, r, want)
			}
		}
	}

	t.Run("torn tail", func(t *testing.T) {
		fs := NewMemFS()
		w := NewWriter(fs, 0, Options{})
		appendN(t, w, 0, 8)
		w.Close()
		seg := segName(0, 0)
		fs.Truncate(seg, int64(fs.Size(seg)-3))

		rec := mustRecover(t, fs, 0)
		if len(rec.Records) != 7 || rec.LastLSN != 7 || rec.Report.TornTail != 1 {
			t.Fatalf("%d records, last=%d, report %+v", len(rec.Records), rec.LastLSN, rec.Report)
		}
		if rec.Report.Repaired == 0 {
			t.Fatalf("no repair recorded: %+v", rec.Report)
		}
		if got, want := fs.Size(seg), segHeaderLen+7*frame; got != want {
			t.Fatalf("segment not truncated to last valid frame: %d bytes, want %d", got, want)
		}
		resumeAndRecheck(t, fs, rec, 10)
	})

	t.Run("bad crc mid-segment", func(t *testing.T) {
		fs := NewMemFS()
		w := NewWriter(fs, 0, Options{})
		appendN(t, w, 0, 8)
		w.Close()
		seg := segName(0, 0)
		// Flip a payload byte in the 4th frame: 5..8 are unreplayable
		// and must be physically discarded with the damage.
		fs.Corrupt(seg, segHeaderLen+3*frame+frameHdrLen+2, 0x40)

		rec := mustRecover(t, fs, 0)
		if len(rec.Records) != 3 || rec.LastLSN != 3 || rec.Report.BadCRC != 1 {
			t.Fatalf("%d records, last=%d, report %+v", len(rec.Records), rec.LastLSN, rec.Report)
		}
		if got, want := fs.Size(seg), segHeaderLen+3*frame; got != want {
			t.Fatalf("segment not truncated at the damage: %d bytes, want %d", got, want)
		}
		resumeAndRecheck(t, fs, rec, 6)
	})

	t.Run("shed gap", func(t *testing.T) {
		mem := NewMemFS()
		gfs := &gateFS{FS: mem}
		gfs.gate.Lock()
		w := NewWriter(gfs, 0, Options{StagingCap: 4})
		w.Append(payload(1))
		for {
			w.mu.Lock()
			idle := len(w.buf) == 0 && w.inFlight
			w.mu.Unlock()
			if idle {
				break
			}
		}
		for lsn := uint64(2); lsn <= 8; lsn++ {
			w.Append(payload(lsn)) // 2..5 accepted, 6..8 shed
		}
		gfs.gate.Unlock()
		w.Flush()
		w.Append(payload(9)) // beyond the gap marker: not replayable
		w.Close()

		rec := mustRecover(t, mem, 0)
		if len(rec.Records) != 5 || rec.LastLSN != 5 || !rec.Report.GapStop {
			t.Fatalf("%d records, last=%d, report %+v", len(rec.Records), rec.LastLSN, rec.Report)
		}
		// The marker and the stranded record behind it are cut away, so
		// the resumed writer's records chain on cleanly.
		resumeAndRecheck(t, mem, rec, 8)
	})
}

func TestCrashFSExactBudgetWrite(t *testing.T) {
	mem := NewMemFS()
	cfs := NewCrashFS(mem)
	f, err := cfs.Create("x")
	if err != nil {
		t.Fatal(err)
	}
	cfs.KillAfter(10)
	// A write of exactly the remaining budget is fully applied and
	// reported as a clean success; the crash lands on the boundary.
	n, err := f.Write(make([]byte, 10))
	if n != 10 || err != nil {
		t.Fatalf("exact-budget write: n=%d err=%v, want 10,nil", n, err)
	}
	if !cfs.Crashed() {
		t.Fatal("FS should be dead after the budget is consumed")
	}
	if _, err := f.Write([]byte{1}); err != ErrCrashed {
		t.Fatalf("post-budget write: err=%v, want ErrCrashed", err)
	}
	if got := mem.Size("x"); got != 10 {
		t.Fatalf("file has %d bytes, want 10", got)
	}

	// A write crossing the boundary is torn at it.
	mem = NewMemFS()
	cfs = NewCrashFS(mem)
	f, _ = cfs.Create("y")
	cfs.KillAfter(10)
	n, err = f.Write(make([]byte, 12))
	if n != 10 || err != ErrCrashed {
		t.Fatalf("crossing write: n=%d err=%v, want 10,ErrCrashed", n, err)
	}
	if got := mem.Size("y"); got != 10 {
		t.Fatalf("file has %d bytes, want 10", got)
	}
}

func TestManifestRoundTrip(t *testing.T) {
	fs := NewMemFS()
	if _, ok, err := ReadManifest(fs); ok || err != nil {
		t.Fatalf("empty dir: ok=%v err=%v", ok, err)
	}
	if err := WriteManifest(fs, 4); err != nil {
		t.Fatal(err)
	}
	n, ok, err := ReadManifest(fs)
	if err != nil || !ok || n != 4 {
		t.Fatalf("ReadManifest = %d,%v,%v", n, ok, err)
	}
	// The manifest is invisible to the shard/file scan.
	if shards, err := Shards(fs); err != nil || len(shards) != 0 {
		t.Fatalf("Shards = %v, %v", shards, err)
	}
	// A corrupt manifest is a typed refusal, not a guess.
	fs.Corrupt(manifestName, 9, 0xff)
	if _, _, err := ReadManifest(fs); err == nil {
		t.Fatal("corrupt manifest read succeeded")
	}

	dfs, err := NewDirFS(t.TempDir() + "/journal")
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteManifest(dfs, 2); err != nil {
		t.Fatal(err)
	}
	if n, ok, err := ReadManifest(dfs); err != nil || !ok || n != 2 {
		t.Fatalf("DirFS ReadManifest = %d,%v,%v", n, ok, err)
	}
}

func TestShardsListsJournalledShards(t *testing.T) {
	fs := NewMemFS()
	for _, sh := range []int{0, 2, 5} {
		w := NewWriter(fs, sh, Options{})
		w.Append(payload(1))
		w.Close()
	}
	got, err := Shards(fs)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0] != 0 || got[1] != 2 || got[2] != 5 {
		t.Fatalf("shards: %v", got)
	}
}

// TestDirFSRoundTrip runs the writer → checkpoint → recover cycle on
// the production os-backed FS: create/rename/remove/list semantics on
// a real directory, fsync included.
func TestDirFSRoundTrip(t *testing.T) {
	fs, err := NewDirFS(t.TempDir() + "/journal")
	if err != nil {
		t.Fatal(err)
	}
	w := NewWriter(fs, 2, Options{})
	appendN(t, w, 0, 12)
	if !w.Checkpoint(12, []byte("disk-ckpt")) {
		t.Fatal("checkpoint refused")
	}
	appendN(t, w, 12, 5)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	rec := mustRecover(t, fs, 2)
	if rec.CheckpointLSN != 12 || string(rec.Checkpoint) != "disk-ckpt" {
		t.Fatalf("checkpoint lsn=%d payload=%q", rec.CheckpointLSN, rec.Checkpoint)
	}
	if len(rec.Records) != 5 || rec.LastLSN != 17 {
		t.Fatalf("tail: %d records, last LSN %d", len(rec.Records), rec.LastLSN)
	}
	for i, r := range rec.Records {
		if string(r) != string(payload(uint64(13+i))) {
			t.Fatalf("record %d diverges: %q", i, r)
		}
	}
	shards, err := Shards(fs)
	if err != nil || len(shards) != 1 || shards[0] != 2 {
		t.Fatalf("Shards = %v, %v", shards, err)
	}
}
