package journal

// FuzzJournalRecover: arbitrary byte-level damage to a valid journal
// — truncation, bit flips, whole-file deletion, at fuzz-chosen
// offsets — must never panic Recover, and whatever state Recover does
// return must be exactly what the writer appended: the checkpoint
// blob for its LSN and a contiguous, bit-identical record tail. That
// prefix property is what makes trading-level recovery a prefix
// replay of the reference run, so a divergence here IS a diverging
// book.

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestFuzzCorpusCommitted pins the seed corpus to the repository: the
// damage-class exemplars under testdata/fuzz must exist, or a plain
// `go test` run exercises none of them and the fuzz target degrades
// to whatever f.Add seeds happen to remain in sync.
func TestFuzzCorpusCommitted(t *testing.T) {
	dir := filepath.Join("testdata", "fuzz", "FuzzJournalRecover")
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("committed fuzz corpus missing: %v", err)
	}
	var seeds int
	for _, e := range ents {
		if e.IsDir() {
			continue
		}
		b, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if !strings.HasPrefix(string(b), "go test fuzz v1\n") {
			t.Fatalf("corpus file %s is not a go-fuzz v1 entry", e.Name())
		}
		seeds++
	}
	if seeds == 0 {
		t.Fatalf("no corpus entries committed under %s", dir)
	}
}

// ckptBlob is the deterministic checkpoint payload for a given LSN.
func ckptBlob(lsn uint64) []byte {
	return []byte(fmt.Sprintf("checkpoint-state-%06d", lsn))
}

// buildReferenceJournal writes 45 records with checkpoints at LSN 10,
// 20 and 30 and returns the raw files. Retention keeps the newest two
// checkpoints and the segments behind them, so the corpus holds
// multiple fallback targets.
func buildReferenceJournal(tb testing.TB) map[string][]byte {
	fs := NewMemFS()
	w := NewWriter(fs, 0, Options{})
	for lsn := uint64(1); lsn <= 45; lsn++ {
		if _, ok := w.Append(payload(lsn)); !ok {
			tb.Fatalf("append %d shed", lsn)
		}
		if lsn%10 == 0 && lsn <= 30 {
			if !w.Checkpoint(lsn, ckptBlob(lsn)) {
				tb.Fatalf("checkpoint %d refused", lsn)
			}
		}
	}
	if err := w.Close(); err != nil {
		tb.Fatalf("close: %v", err)
	}
	names, err := fs.List()
	if err != nil {
		tb.Fatal(err)
	}
	files := make(map[string][]byte, len(names))
	for _, n := range names {
		b, err := fs.ReadFile(n)
		if err != nil {
			tb.Fatal(err)
		}
		files[n] = append([]byte(nil), b...)
	}
	return files
}

func FuzzJournalRecover(f *testing.F) {
	ref := buildReferenceJournal(f)
	// Stable file order so a fuzz byte selects the same file forever.
	var names []string
	for n := range ref {
		names = append(names, n)
	}
	for i := 1; i < len(names); i++ {
		for j := i; j > 0 && names[j] < names[j-1]; j-- {
			names[j], names[j-1] = names[j-1], names[j]
		}
	}

	// Seed corpus: one exemplar per damage class (see testdata/fuzz).
	f.Add([]byte{})                                      // pristine
	f.Add([]byte{0, 0, 0, 0, 5, 0})                      // truncate a file near its end
	f.Add([]byte{1, 1, 0, 0, 40, 0x20})                  // flip a bit mid-segment
	f.Add([]byte{2, 2, 0, 0, 0, 0})                      // delete a whole file
	f.Add([]byte{0, 1, 0, 0, 9, 0xff, 1, 0, 0, 0, 3, 0}) // header flip + truncate

	f.Fuzz(func(t *testing.T, ops []byte) {
		if len(names) == 0 {
			// buildReferenceJournal always writes segments; an empty
			// listing means the writer or MemFS broke, and skipping
			// would hide that every fuzz input silently tested nothing.
			t.Fatal("reference journal produced no files")
		}
		fs := NewMemFS()
		for n, b := range ref {
			w, _ := fs.Create(n)
			w.Write(append([]byte(nil), b...))
			w.Close()
		}
		// Each 6-byte chunk is one damage op: [file, kind, off3, arg].
		for len(ops) >= 6 {
			name := names[int(ops[0])%len(names)]
			off := int(ops[2])<<16 | int(ops[3])<<8 | int(ops[4])
			switch ops[1] % 3 {
			case 0:
				if sz := fs.Size(name); sz > 0 {
					fs.Truncate(name, int64(off%sz))
				}
			case 1:
				if sz := fs.Size(name); sz > 0 {
					xor := ops[5]
					if xor == 0 {
						xor = 1
					}
					fs.Corrupt(name, off%sz, xor)
				}
			case 2:
				fs.Remove(name)
			}
			ops = ops[6:]
		}

		rec, err := Recover(fs, 0)
		if err != nil {
			// Typed, non-panicking refusal is allowed; silent garbage
			// is not.
			return
		}
		// Whatever survived must be a consistent prefix of what was
		// written: checkpoint blob bit-identical for its LSN, records
		// bit-identical and contiguous behind it.
		if rec.Checkpoint != nil {
			if rec.CheckpointLSN == 0 || rec.CheckpointLSN > 30 || rec.CheckpointLSN%10 != 0 {
				t.Fatalf("recovered impossible checkpoint LSN %d", rec.CheckpointLSN)
			}
			if !bytes.Equal(rec.Checkpoint, ckptBlob(rec.CheckpointLSN)) {
				t.Fatalf("checkpoint payload at LSN %d diverges from what was written", rec.CheckpointLSN)
			}
		} else if rec.CheckpointLSN != 0 {
			t.Fatalf("no checkpoint but CheckpointLSN=%d", rec.CheckpointLSN)
		}
		for i, r := range rec.Records {
			lsn := rec.CheckpointLSN + uint64(i) + 1
			if lsn > 45 {
				t.Fatalf("recovered record beyond last appended LSN: %d", lsn)
			}
			if !bytes.Equal(r, payload(lsn)) {
				t.Fatalf("record at LSN %d diverges from what was written", lsn)
			}
		}
		if want := rec.CheckpointLSN + uint64(len(rec.Records)); rec.LastLSN != want {
			t.Fatalf("LastLSN %d inconsistent with checkpoint %d + %d records",
				rec.LastLSN, rec.CheckpointLSN, len(rec.Records))
		}
		// Recover repairs the directory as it scans; a second pass
		// over the healed journal must converge to the identical
		// state — otherwise a resumed writer would be building on
		// different history than the one just returned.
		rec2, err := Recover(fs, 0)
		if err != nil {
			t.Fatalf("recover after repair failed: %v", err)
		}
		if rec2.CheckpointLSN != rec.CheckpointLSN || !bytes.Equal(rec2.Checkpoint, rec.Checkpoint) ||
			rec2.LastLSN != rec.LastLSN || len(rec2.Records) != len(rec.Records) {
			t.Fatalf("recovery diverges after its own repair: (%d,%d,%d) vs (%d,%d,%d)",
				rec.CheckpointLSN, rec.LastLSN, len(rec.Records),
				rec2.CheckpointLSN, rec2.LastLSN, len(rec2.Records))
		}
		for i := range rec.Records {
			if !bytes.Equal(rec.Records[i], rec2.Records[i]) {
				t.Fatalf("record %d differs between recovery and post-repair recovery", i)
			}
		}
	})
}
