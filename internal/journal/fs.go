package journal

// Filesystem abstraction. The journal never touches the os package
// directly: every byte it persists flows through an FS, which is what
// makes the crash/torn-write fault-injection suite possible — CrashFS
// wraps any FS and kills writes at an exact byte offset, the way a
// power cut tears a page mid-write. DirFS is the production backend;
// MemFS backs tests and the fuzz target (byte-level corruption needs
// cheap whole-file access).

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
)

// File is an append-only output stream.
type File interface {
	Write(p []byte) (int, error)
	// Sync makes previous writes durable (fsync). Group commit calls
	// it once per batch unless the writer runs with NoSync.
	Sync() error
	Close() error
}

// FS is the flat directory the journal lives in: segment and
// checkpoint files for every shard side by side, no subdirectories.
type FS interface {
	// Create opens name for writing, truncating any previous content.
	Create(name string) (File, error)
	// ReadFile returns name's full content.
	ReadFile(name string) ([]byte, error)
	// List returns every file name, in no particular order.
	List() ([]string, error)
	// Rename atomically moves old to new (the checkpoint publish
	// step: tmp write + rename keeps a torn checkpoint from ever
	// carrying the final name on a well-behaved filesystem).
	Rename(oldName, newName string) error
	// Remove deletes a file; removing a missing file is not an error.
	Remove(name string) error
	// Truncate cuts a file to size bytes. Recovery uses it to repair a
	// damaged segment: cutting the tail back to the last valid frame
	// lets a resumed writer's segments chain past the old damage.
	Truncate(name string, size int64) error
	// SyncDir makes directory-level mutations (Create, Rename, Remove)
	// durable — fsync on the directory itself. Without it a power cut
	// can lose a freshly created segment or a just-renamed checkpoint
	// even though the file data was fsynced.
	SyncDir() error
}

// DirFS is the os-backed FS rooted at a directory.
type DirFS struct{ dir string }

// NewDirFS creates (if needed) and opens a journal directory.
func NewDirFS(dir string) (*DirFS, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	return &DirFS{dir: dir}, nil
}

func (d *DirFS) Create(name string) (File, error) {
	return os.Create(filepath.Join(d.dir, name))
}

func (d *DirFS) ReadFile(name string) ([]byte, error) {
	return os.ReadFile(filepath.Join(d.dir, name))
}

func (d *DirFS) List() ([]string, error) {
	ents, err := os.ReadDir(d.dir)
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(ents))
	for _, e := range ents {
		if !e.IsDir() {
			names = append(names, e.Name())
		}
	}
	return names, nil
}

func (d *DirFS) Rename(oldName, newName string) error {
	return os.Rename(filepath.Join(d.dir, oldName), filepath.Join(d.dir, newName))
}

func (d *DirFS) Remove(name string) error {
	err := os.Remove(filepath.Join(d.dir, name))
	if os.IsNotExist(err) {
		return nil
	}
	return err
}

func (d *DirFS) Truncate(name string, size int64) error {
	return os.Truncate(filepath.Join(d.dir, name), size)
}

func (d *DirFS) SyncDir() error {
	f, err := os.Open(d.dir)
	if err != nil {
		return err
	}
	err = f.Sync()
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

// MemFS is an in-memory FS. It is safe for concurrent use, and it
// exposes the raw bytes of every file so tests can corrupt them with
// byte precision.
type MemFS struct {
	mu    sync.Mutex
	files map[string][]byte
}

// NewMemFS returns an empty in-memory journal directory.
func NewMemFS() *MemFS { return &MemFS{files: make(map[string][]byte)} }

type memFile struct {
	fs   *MemFS
	name string
}

func (f *memFile) Write(p []byte) (int, error) {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	f.fs.files[f.name] = append(f.fs.files[f.name], p...)
	return len(p), nil
}

func (f *memFile) Sync() error  { return nil }
func (f *memFile) Close() error { return nil }

func (m *MemFS) Create(name string) (File, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.files[name] = nil
	return &memFile{fs: m, name: name}, nil
}

func (m *MemFS) ReadFile(name string) ([]byte, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	b, ok := m.files[name]
	if !ok {
		return nil, fmt.Errorf("journal: %s: %w", name, os.ErrNotExist)
	}
	out := make([]byte, len(b))
	copy(out, b)
	return out, nil
}

func (m *MemFS) List() ([]string, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	names := make([]string, 0, len(m.files))
	for n := range m.files {
		names = append(names, n)
	}
	sort.Strings(names)
	return names, nil
}

func (m *MemFS) Rename(oldName, newName string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	b, ok := m.files[oldName]
	if !ok {
		return fmt.Errorf("journal: %s: %w", oldName, os.ErrNotExist)
	}
	delete(m.files, oldName)
	m.files[newName] = b
	return nil
}

func (m *MemFS) Remove(name string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	delete(m.files, name)
	return nil
}

func (m *MemFS) SyncDir() error { return nil }

// Corrupt XORs one byte of a file (a bit-rot/torn-page stand-in).
func (m *MemFS) Corrupt(name string, off int, xor byte) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	b, ok := m.files[name]
	if !ok || off < 0 || off >= len(b) || xor == 0 {
		return false
	}
	b[off] ^= xor
	return true
}

// Truncate cuts a file to n bytes (recovery repair, and a lost-tail
// stand-in in tests). Cutting at or past the current length is a no-op.
func (m *MemFS) Truncate(name string, n int64) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	b, ok := m.files[name]
	if !ok {
		return fmt.Errorf("journal: %s: %w", name, os.ErrNotExist)
	}
	if n < 0 {
		return fmt.Errorf("journal: truncate %s to %d", name, n)
	}
	if n < int64(len(b)) {
		m.files[name] = b[:n]
	}
	return nil
}

// Size reports a file's length, or -1 if absent.
func (m *MemFS) Size(name string) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	if b, ok := m.files[name]; ok {
		return len(b)
	}
	return -1
}

// CrashFS wraps an FS with a write budget: once budget bytes have
// been written through it (across all files), the write that crosses
// the boundary is applied only up to the boundary — a torn write —
// and every later operation fails with ErrCrashed. Renames and
// removes past the boundary are dropped too, so a checkpoint can die
// between its tmp write and its publish. Recovery then runs against
// the underlying FS, exactly as a restart would find the disk.
type CrashFS struct {
	mu     sync.Mutex
	inner  FS
	budget int64 // remaining writable bytes; <0 = unlimited
	dead   bool
}

// ErrCrashed is returned by every CrashFS operation after the write
// budget is exhausted.
var ErrCrashed = fmt.Errorf("journal: simulated crash")

// NewCrashFS wraps inner with an unlimited budget; arm it with
// KillAfter.
func NewCrashFS(inner FS) *CrashFS {
	return &CrashFS{inner: inner, budget: -1}
}

// KillAfter arms the crash: n more bytes may be written, then the
// torn write happens and the FS dies.
func (c *CrashFS) KillAfter(n int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.budget = n
	c.dead = n <= 0
}

// Crashed reports whether the budget has been exhausted.
func (c *CrashFS) Crashed() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.dead
}

type crashFile struct {
	c     *CrashFS
	inner File
}

func (f *crashFile) Write(p []byte) (int, error) {
	f.c.mu.Lock()
	if f.c.dead {
		f.c.mu.Unlock()
		return 0, ErrCrashed
	}
	n := len(p)
	torn := false
	if f.c.budget >= 0 {
		if int64(n) > f.c.budget {
			// The write crosses the boundary: applied up to it, torn.
			n = int(f.c.budget)
			f.c.budget = 0
			f.c.dead = true
			torn = true
		} else {
			// A write of exactly the remaining budget is fully applied
			// and reported as a success; the FS dies on the next
			// operation — the crash landed on a frame boundary.
			f.c.budget -= int64(n)
			if f.c.budget == 0 {
				f.c.dead = true
			}
		}
	}
	f.c.mu.Unlock()
	if n > 0 {
		if _, err := f.inner.Write(p[:n]); err != nil {
			return 0, err
		}
	}
	if torn {
		return n, ErrCrashed
	}
	return n, nil
}

func (f *crashFile) Sync() error {
	if f.c.Crashed() {
		return ErrCrashed
	}
	return f.inner.Sync()
}

func (f *crashFile) Close() error { return f.inner.Close() }

func (c *CrashFS) Create(name string) (File, error) {
	if c.Crashed() {
		return nil, ErrCrashed
	}
	f, err := c.inner.Create(name)
	if err != nil {
		return nil, err
	}
	return &crashFile{c: c, inner: f}, nil
}

func (c *CrashFS) ReadFile(name string) ([]byte, error) { return c.inner.ReadFile(name) }
func (c *CrashFS) List() ([]string, error)              { return c.inner.List() }

func (c *CrashFS) Rename(oldName, newName string) error {
	if c.Crashed() {
		return ErrCrashed
	}
	return c.inner.Rename(oldName, newName)
}

func (c *CrashFS) Remove(name string) error {
	if c.Crashed() {
		return ErrCrashed
	}
	return c.inner.Remove(name)
}

func (c *CrashFS) Truncate(name string, size int64) error {
	if c.Crashed() {
		return ErrCrashed
	}
	return c.inner.Truncate(name, size)
}

func (c *CrashFS) SyncDir() error {
	if c.Crashed() {
		return ErrCrashed
	}
	return c.inner.SyncDir()
}

// Inner returns the wrapped FS — what the disk holds after the crash,
// which is what recovery reads.
func (c *CrashFS) Inner() FS { return c.inner }
