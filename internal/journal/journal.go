// Package journal implements the crash-safe, append-only order
// journal behind the trading platform's event-sourced recovery
// (DESIGN-dispatch.md §12).
//
// Layout: one flat directory holds, per broker shard, a chain of
// segment files of CRC-framed records plus checkpoint files. A
// record's meaning is opaque here — the trading layer encodes matched
// order/audit events; this package owns durability, framing and the
// recovery scan.
//
//	seg-<shard>-<startLSN>.jnl   records startLSN+1, startLSN+2, …
//	ckpt-<shard>-<lsn>.ckp       full state after applying record lsn
//
// Writing is group-committed off the matching thread: Append stages a
// record into a bounded ring and never blocks; a committer goroutine
// drains the ring, writes frames and fsyncs once per batch. When the
// ring overflows, the record is shed and the loss marked — the next
// committed frame is a gap marker, so recovery knows the tail after
// it is not replayable (the shed-and-mark policy; the next checkpoint,
// being a full state snapshot, heals the journal). A checkpoint
// request rides the same FIFO ring, which is what guarantees the
// segment started at checkpoint LSN L contains exactly the records
// after L.
//
// Recovery never panics on a damaged journal: it picks the newest
// checkpoint that validates (falling back past torn or corrupt ones),
// then replays the contiguous record tail, truncating at the first
// torn frame, CRC mismatch, gap marker or LSN discontinuity — every
// fault is surfaced as a typed error in the Report, never as a crash.
// The truncation is physical, not just logical: Recover repairs the
// directory to match the state it returns — the damaged segment is
// cut back to its last replayable frame, segments stranded beyond the
// damage and checkpoints that failed validation are removed — so a
// writer resumed at LastLSN chains cleanly onto the healed journal
// and a SECOND crash cannot hide the records it committed behind the
// old damage.
package journal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Typed fault classes surfaced by recovery (wrapped with file/offset
// context in Report.Faults).
var (
	// ErrTornTail marks a frame cut short by a crash mid-write; the
	// journal is truncated to the last whole frame before it.
	ErrTornTail = errors.New("journal: torn tail")
	// ErrBadCRC marks a whole-sized frame whose checksum does not
	// match — bit rot or a torn page inside the file.
	ErrBadCRC = errors.New("journal: frame CRC mismatch")
	// ErrPartialCheckpoint marks a checkpoint file that is truncated,
	// corrupt or mislabeled; recovery falls back to the previous one.
	ErrPartialCheckpoint = errors.New("journal: partial or corrupt checkpoint")
	// ErrShedGap marks a gap marker: records after it were shed under
	// backpressure, so the tail beyond is not replayable.
	ErrShedGap = errors.New("journal: shed gap marker")
	// ErrSegmentGap marks a missing segment or an LSN discontinuity
	// between frames; the tail beyond it is not replayable.
	ErrSegmentGap = errors.New("journal: segment gap")
	// ErrClosed is returned by operations on a closed writer.
	ErrClosed = errors.New("journal: writer closed")
)

const (
	segMagic  = "DFJS"
	ckptMagic = "DFJC"
	version   = 1

	segHeaderLen  = 20 // magic + u32 version + u32 shard + u64 startLSN
	frameHdrLen   = 16 // u32 len|flags + u32 crc + u64 lsn
	ckptHeaderLen = 28 // magic + u32 version + u32 shard + u64 lsn + u32 len + u32 crc

	// gapFlag marks a gap-marker frame in the length word.
	gapFlag = uint32(1) << 31
	// maxFrame bounds a single record; anything larger in a length
	// word is damage, not data.
	maxFrame = 1 << 24
)

func segName(shard int, startLSN uint64) string {
	return fmt.Sprintf("seg-%03d-%016x.jnl", shard, startLSN)
}

func ckptName(shard int, lsn uint64) string {
	return fmt.Sprintf("ckpt-%03d-%016x.ckp", shard, lsn)
}

// parseName decodes a segment or checkpoint file name; kind is "seg"
// or "ckpt".
func parseName(name string) (kind string, shard int, lsn uint64, ok bool) {
	var ext string
	switch {
	case strings.HasPrefix(name, "seg-") && strings.HasSuffix(name, ".jnl"):
		kind, ext = "seg", ".jnl"
	case strings.HasPrefix(name, "ckpt-") && strings.HasSuffix(name, ".ckp"):
		kind, ext = "ckpt", ".ckp"
	default:
		return "", 0, 0, false
	}
	body := strings.TrimSuffix(name[len(kind)+1:], ext)
	dash := strings.IndexByte(body, '-')
	if dash <= 0 {
		return "", 0, 0, false
	}
	sh, err := strconv.Atoi(body[:dash])
	if err != nil {
		return "", 0, 0, false
	}
	lsn, err = strconv.ParseUint(body[dash+1:], 16, 64)
	if err != nil {
		return "", 0, 0, false
	}
	return kind, sh, lsn, true
}

// Metrics counts writer-side activity; all fields are cumulative.
type Metrics struct {
	// Appended records accepted into the staging ring.
	Appended uint64
	// Shed records dropped because the ring was full (each run of
	// sheds produces one gap marker).
	Shed uint64
	// GapMarkers written.
	GapMarkers uint64
	// Commits is the number of group-commit batches written.
	Commits uint64
	// Checkpoints requested and CheckpointsWritten published.
	Checkpoints        uint64
	CheckpointsWritten uint64
}

// Options tune a Writer.
type Options struct {
	// NoSync skips fsync on group commit and checkpoint publish —
	// for CI and benchmarks, where the process outlives the test but
	// the host is not expected to lose power.
	NoSync bool
	// StagingCap bounds the staging ring (default 1024 records).
	StagingCap int
}

// entry is one staged unit of work for the committer.
type entry struct {
	lsn     uint64
	payload []byte
	gapFrom uint64 // >0: gap marker covering [gapFrom, lsn]
	ckpt    bool   // checkpoint request: payload is the state blob
}

// Writer is one shard's journal appender. Append and Checkpoint are
// called from the shard's matching thread and never block on IO; a
// committer goroutine owns the files.
type Writer struct {
	fs    FS
	shard int
	opts  Options

	mu       sync.Mutex
	cond     *sync.Cond
	buf      []entry
	inFlight bool
	nextLSN  uint64
	startLSN uint64
	started  bool // first batch processed; StartAt refused after
	gapFrom  uint64
	gapN     uint64
	closed   bool
	err      error // sticky commit error (simulated or real crash)
	m        Metrics

	cur  File // current segment (committer-owned)
	done chan struct{}
}

// NewWriter starts a shard journal writer on fs. The first segment is
// created lazily, at the LSN pinned by StartAt (or 0).
func NewWriter(fs FS, shard int, opts Options) *Writer {
	if opts.StagingCap <= 0 {
		opts.StagingCap = 1024
	}
	w := &Writer{fs: fs, shard: shard, opts: opts, done: make(chan struct{})}
	w.cond = sync.NewCond(&w.mu)
	go w.run()
	return w
}

// StartAt pins the writer's first LSN — the recovery resume point.
// It must be called before the first Append; later calls are ignored.
func (w *Writer) StartAt(lsn uint64) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.started || w.m.Appended > 0 {
		return
	}
	w.nextLSN = lsn
	w.startLSN = lsn
}

// Append stages one record. It returns the record's LSN and whether
// it was accepted; ok == false means the staging ring was full (or
// the writer is dead) and the record was shed — the loss is marked in
// the journal so recovery never replays past it.
func (w *Writer) Append(payload []byte) (lsn uint64, ok bool) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.nextLSN++
	lsn = w.nextLSN
	if w.closed || w.err != nil || len(w.buf) >= w.opts.StagingCap {
		if w.gapN == 0 {
			w.gapFrom = lsn
		}
		w.gapN++
		w.m.Shed++
		return lsn, false
	}
	if w.gapN > 0 {
		w.buf = append(w.buf, entry{lsn: w.gapFrom + w.gapN - 1, gapFrom: w.gapFrom})
		w.m.GapMarkers++
		w.gapFrom, w.gapN = 0, 0
	}
	w.buf = append(w.buf, entry{lsn: lsn, payload: payload})
	w.m.Appended++
	w.cond.Signal()
	return lsn, true
}

// Checkpoint stages a full-state snapshot taken after applying record
// lsn. It rides the same FIFO ring as records, so the rotated segment
// holds exactly the records after lsn. Checkpoints bypass the shed
// policy (they are rare and heal shed gaps).
func (w *Writer) Checkpoint(lsn uint64, payload []byte) bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed || w.err != nil {
		return false
	}
	w.buf = append(w.buf, entry{lsn: lsn, payload: payload, ckpt: true})
	w.m.Checkpoints++
	w.cond.Signal()
	return true
}

// Flush blocks until everything staged so far is committed (and
// synced, unless NoSync). It returns the sticky commit error, if any.
func (w *Writer) Flush() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	for (len(w.buf) > 0 || w.inFlight) && w.err == nil {
		w.cond.Wait()
	}
	return w.err
}

// Metrics snapshots the writer counters.
func (w *Writer) Metrics() Metrics {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.m
}

// LastLSN reports the most recently assigned LSN.
func (w *Writer) LastLSN() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.nextLSN
}

// Err reports the sticky commit error, if any.
func (w *Writer) Err() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.err
}

// Close flushes and stops the committer. Idempotent and safe to call
// concurrently; every call reports the sticky commit error.
func (w *Writer) Close() error {
	w.mu.Lock()
	if !w.closed {
		w.closed = true
		w.cond.Broadcast()
	}
	w.mu.Unlock()
	<-w.done
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.err
}

// run is the committer goroutine: drain the ring, write frames,
// handle checkpoint requests, sync once per batch.
func (w *Writer) run() {
	defer close(w.done)
	for {
		w.mu.Lock()
		for len(w.buf) == 0 && !w.closed {
			w.cond.Wait()
		}
		if len(w.buf) == 0 && w.closed {
			w.mu.Unlock()
			if w.cur != nil {
				w.cur.Close()
			}
			return
		}
		batch := w.buf
		w.buf = nil
		w.inFlight = true
		w.started = true
		w.mu.Unlock()

		err := w.commit(batch)

		w.mu.Lock()
		w.inFlight = false
		if err != nil && w.err == nil {
			w.err = err
		}
		w.m.Commits++
		w.cond.Broadcast()
		w.mu.Unlock()
	}
}

// commit writes one drained batch.
func (w *Writer) commit(batch []entry) error {
	wrote := false
	for _, e := range batch {
		if e.ckpt {
			// Frames before the checkpoint in this batch are
			// superseded by it; no need to sync them first.
			if err := w.writeCheckpoint(e.lsn, e.payload); err != nil {
				return err
			}
			continue
		}
		if err := w.writeFrame(e); err != nil {
			return err
		}
		wrote = true
	}
	if wrote && !w.opts.NoSync {
		if err := w.cur.Sync(); err != nil {
			return err
		}
	}
	return nil
}

// writeFrame appends one record (or gap-marker) frame to the current
// segment, creating the segment lazily.
func (w *Writer) writeFrame(e entry) error {
	if w.cur == nil {
		if err := w.openSegment(w.startLSN); err != nil {
			return err
		}
	}
	payload := e.payload
	lenFlags := uint32(len(payload))
	if e.gapFrom > 0 {
		var gp [8]byte
		binary.LittleEndian.PutUint64(gp[:], e.gapFrom)
		payload = gp[:]
		lenFlags = uint32(len(payload)) | gapFlag
	}
	frame := make([]byte, frameHdrLen+len(payload))
	binary.LittleEndian.PutUint32(frame[0:4], lenFlags)
	binary.LittleEndian.PutUint64(frame[8:16], e.lsn)
	copy(frame[frameHdrLen:], payload)
	binary.LittleEndian.PutUint32(frame[4:8], crc32.ChecksumIEEE(frame[8:]))
	_, err := w.cur.Write(frame)
	return err
}

// openSegment starts the segment whose records follow LSN start. The
// directory is synced so the new entry survives power loss — frame
// fsyncs alone cannot make a file durable whose dirent never was.
func (w *Writer) openSegment(start uint64) error {
	f, err := w.fs.Create(segName(w.shard, start))
	if err != nil {
		return err
	}
	hdr := make([]byte, segHeaderLen)
	copy(hdr[0:4], segMagic)
	binary.LittleEndian.PutUint32(hdr[4:8], version)
	binary.LittleEndian.PutUint32(hdr[8:12], uint32(w.shard))
	binary.LittleEndian.PutUint64(hdr[12:20], start)
	if _, err := f.Write(hdr); err != nil {
		f.Close()
		return err
	}
	if !w.opts.NoSync {
		if err := w.fs.SyncDir(); err != nil {
			f.Close()
			return err
		}
	}
	w.cur = f
	return nil
}

// writeCheckpoint publishes a checkpoint (tmp + sync + rename), then
// rotates to a fresh segment at its LSN and prunes superseded files.
func (w *Writer) writeCheckpoint(lsn uint64, payload []byte) error {
	name := ckptName(w.shard, lsn)
	tmp := name + ".tmp"
	f, err := w.fs.Create(tmp)
	if err != nil {
		return err
	}
	hdr := make([]byte, ckptHeaderLen)
	copy(hdr[0:4], ckptMagic)
	binary.LittleEndian.PutUint32(hdr[4:8], version)
	binary.LittleEndian.PutUint32(hdr[8:12], uint32(w.shard))
	binary.LittleEndian.PutUint64(hdr[12:20], lsn)
	binary.LittleEndian.PutUint32(hdr[20:24], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[24:28], crc32.ChecksumIEEE(payload))
	if _, err := f.Write(hdr); err != nil {
		f.Close()
		return err
	}
	if _, err := f.Write(payload); err != nil {
		f.Close()
		return err
	}
	if !w.opts.NoSync {
		if err := f.Sync(); err != nil {
			f.Close()
			return err
		}
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := w.fs.Rename(tmp, name); err != nil {
		return err
	}
	// Make the rename durable before prune deletes the files the new
	// checkpoint supersedes: if the removes became durable but the
	// rename did not, both the new and the old checkpoint would be
	// gone and the 2-deep retention fallback would have nothing left.
	if !w.opts.NoSync {
		if err := w.fs.SyncDir(); err != nil {
			return err
		}
	}
	w.m.CheckpointsWritten++
	// Rotate: the new segment carries exactly the records after lsn.
	if w.cur != nil {
		w.cur.Close()
		w.cur = nil
	}
	if err := w.openSegment(lsn); err != nil {
		return err
	}
	w.startLSN = lsn
	w.prune(lsn)
	return nil
}

// prune removes superseded files: checkpoints older than the previous
// one (two are retained so recovery can fall back past a torn latest)
// and segments no retained checkpoint needs.
func (w *Writer) prune(latest uint64) {
	names, err := w.fs.List()
	if err != nil {
		return // advisory; recovery tolerates stale files
	}
	var ckpts, segs []uint64
	for _, n := range names {
		kind, shard, lsn, ok := parseName(n)
		if !ok || shard != w.shard {
			continue
		}
		switch kind {
		case "ckpt":
			ckpts = append(ckpts, lsn)
		case "seg":
			segs = append(segs, lsn)
		}
	}
	sort.Slice(ckpts, func(i, j int) bool { return ckpts[i] > ckpts[j] })
	floor := latest
	for i, lsn := range ckpts {
		if i == 1 {
			floor = lsn // previous checkpoint: oldest retained
		}
		if i >= 2 {
			w.fs.Remove(ckptName(w.shard, lsn))
		}
	}
	// Keep the newest segment at or below the floor (it carries the
	// floor checkpoint's tail) and everything after it.
	var keep uint64
	hasKeep := false
	for _, s := range segs {
		if s <= floor && (!hasKeep || s > keep) {
			keep, hasKeep = s, true
		}
	}
	for _, s := range segs {
		if hasKeep && s < keep {
			w.fs.Remove(segName(w.shard, s))
		}
	}
}

// Report is the recovery audit trail: what was replayed, what was
// damaged, and how each damage class was handled.
type Report struct {
	// RecoveredRecords replayed from the journal tail.
	RecoveredRecords uint64
	// TornTail counts frames cut short by a crash (truncated to the
	// last whole frame).
	TornTail int
	// BadCRC counts whole-sized frames failing their checksum.
	BadCRC int
	// CheckpointFallbacks counts invalid checkpoints skipped on the
	// way to a valid (or empty) state.
	CheckpointFallbacks int
	// GapStop reports the scan stopped at a shed gap marker.
	GapStop bool
	// SegmentGap reports a missing segment or LSN discontinuity.
	SegmentGap bool
	// Repaired counts the physical repairs applied to the directory:
	// damaged-tail truncations plus removals of stranded segments,
	// invalid checkpoints and unpublished checkpoint temporaries.
	Repaired int
	// Faults carries one typed, contextualised error per anomaly.
	Faults []error
}

// Recovered is one shard's recovered journal state.
type Recovered struct {
	Shard int
	// CheckpointLSN and Checkpoint hold the newest valid checkpoint
	// (nil Checkpoint = none; start from the empty state at LSN 0).
	CheckpointLSN uint64
	Checkpoint    []byte
	// Records are the contiguous replayable tail payloads, LSNs
	// CheckpointLSN+1 … LastLSN.
	Records [][]byte
	// LastLSN is the resume point for a new Writer.
	LastLSN uint64
	Report  Report
}

// Recover scans a shard's journal directory and returns the newest
// consistent state: the best valid checkpoint plus the contiguous
// record tail behind it. Damage — torn frames, corrupt CRCs, partial
// checkpoints, shed gaps, missing segments — degrades the result
// (shorter tail, older checkpoint, empty state) and is reported, but
// never panics and never yields records that differ from what was
// appended.
//
// Recover also repairs the directory to match the state it returns
// (see the package comment): the stop-point segment is truncated to
// its last replayable frame, segments beyond the stop and checkpoints
// that failed validation are removed. Without the repair, a writer
// resumed at LastLSN would open a fresh segment past the damage and
// the NEXT recovery — whose scan stops at the same damage — would
// silently lose every record that writer had fsynced and acknowledged.
// A repair failure is returned as an error: resuming on an unhealed
// journal would be exactly that silent loss.
func Recover(fs FS, shard int) (*Recovered, error) {
	names, err := fs.List()
	if err != nil {
		return nil, fmt.Errorf("journal: recover shard %d: %w", shard, err)
	}
	rec := &Recovered{Shard: shard}
	var ckpts, segs []uint64
	var drop []string // files the repair phase deletes
	for _, n := range names {
		if strings.HasSuffix(n, ".tmp") {
			if kind, sh, _, ok := parseName(strings.TrimSuffix(n, ".tmp")); ok && kind == "ckpt" && sh == shard {
				// A checkpoint died before publish; its rename never
				// happened so it supersedes nothing. Note and remove.
				rec.Report.Faults = append(rec.Report.Faults,
					fmt.Errorf("%w: unpublished %s", ErrPartialCheckpoint, n))
				drop = append(drop, n)
			}
			continue
		}
		kind, sh, lsn, ok := parseName(n)
		if !ok || sh != shard {
			continue
		}
		switch kind {
		case "ckpt":
			ckpts = append(ckpts, lsn)
		case "seg":
			segs = append(segs, lsn)
		}
	}
	sort.Slice(ckpts, func(i, j int) bool { return ckpts[i] > ckpts[j] })
	sort.Slice(segs, func(i, j int) bool { return segs[i] < segs[j] })

	for _, lsn := range ckpts {
		payload, err := readCheckpoint(fs, shard, lsn)
		if err != nil {
			rec.Report.CheckpointFallbacks++
			rec.Report.Faults = append(rec.Report.Faults, err)
			// An invalid checkpoint never becomes valid again; left in
			// place it would outrank real checkpoints in retention and
			// force this fallback on every future recovery.
			drop = append(drop, ckptName(shard, lsn))
			continue
		}
		rec.CheckpointLSN, rec.Checkpoint = lsn, payload
		break
	}
	rec.LastLSN = rec.CheckpointLSN

	// Find the segment chain start: the newest segment at or below
	// the checkpoint LSN carries its tail.
	start := -1
	for i, s := range segs {
		if s <= rec.CheckpointLSN {
			start = i
		}
	}
	if start == -1 {
		if len(segs) > 0 {
			// Only segments strictly ahead of the checkpoint survive:
			// their records cannot connect to the recovered state — and
			// left behind, a resumed writer's LSNs would eventually
			// collide with theirs and a later recovery could splice
			// their stale records into the fresh chain. Remove them.
			rec.Report.SegmentGap = true
			rec.Report.Faults = append(rec.Report.Faults,
				fmt.Errorf("%w: no segment covers checkpoint %d", ErrSegmentGap, rec.CheckpointLSN))
			for _, s := range segs {
				drop = append(drop, segName(shard, s))
			}
		}
		if err := repair(fs, rec, "", 0, drop); err != nil {
			return nil, err
		}
		return rec, nil
	}

	expect := rec.CheckpointLSN + 1
	truncName, truncOff := "", -1
	chain := segs[start:]
	for i, s := range chain {
		if s+1 > expect {
			rec.Report.SegmentGap = true
			rec.Report.Faults = append(rec.Report.Faults,
				fmt.Errorf("%w: segment %s starts past LSN %d", ErrSegmentGap, segName(shard, s), expect))
			// This segment and everything after it cannot connect.
			for _, t := range chain[i:] {
				drop = append(drop, segName(shard, t))
			}
			break
		}
		cont, stopOff := scanSegment(fs, shard, s, &expect, rec)
		if !cont {
			if stopOff >= 0 {
				// Damaged mid-file: cut back to the last whole frame.
				truncName, truncOff = segName(shard, s), stopOff
			} else {
				// Unreadable or bad header: nothing in it is usable.
				drop = append(drop, segName(shard, s))
			}
			for _, t := range chain[i+1:] {
				drop = append(drop, segName(shard, t))
			}
			break
		}
	}
	rec.Report.RecoveredRecords = uint64(len(rec.Records))
	rec.LastLSN = expect - 1
	if err := repair(fs, rec, truncName, int64(truncOff), drop); err != nil {
		return nil, err
	}
	return rec, nil
}

// repair applies the physical healing Recover decided on: truncate the
// stop-point segment and delete the listed unreachable files. Failures
// are returned, not swallowed — a resumed writer on an unhealed chain
// would strand its records behind the old damage.
func repair(fs FS, rec *Recovered, truncName string, truncOff int64, drop []string) error {
	if truncName != "" {
		if err := fs.Truncate(truncName, truncOff); err != nil {
			return fmt.Errorf("journal: repair shard %d: truncate %s: %w", rec.Shard, truncName, err)
		}
		rec.Report.Repaired++
	}
	for _, n := range drop {
		if err := fs.Remove(n); err != nil {
			return fmt.Errorf("journal: repair shard %d: remove %s: %w", rec.Shard, n, err)
		}
		rec.Report.Repaired++
	}
	return nil
}

// readCheckpoint loads and validates one checkpoint file.
func readCheckpoint(fs FS, shard int, lsn uint64) ([]byte, error) {
	name := ckptName(shard, lsn)
	b, err := fs.ReadFile(name)
	if err != nil {
		return nil, fmt.Errorf("%w: %s: %v", ErrPartialCheckpoint, name, err)
	}
	if len(b) < ckptHeaderLen || string(b[0:4]) != ckptMagic ||
		binary.LittleEndian.Uint32(b[4:8]) != version ||
		int(binary.LittleEndian.Uint32(b[8:12])) != shard ||
		binary.LittleEndian.Uint64(b[12:20]) != lsn {
		return nil, fmt.Errorf("%w: %s: bad header", ErrPartialCheckpoint, name)
	}
	n := binary.LittleEndian.Uint32(b[20:24])
	if uint64(n) != uint64(len(b)-ckptHeaderLen) {
		return nil, fmt.Errorf("%w: %s: truncated (%d of %d payload bytes)",
			ErrPartialCheckpoint, name, len(b)-ckptHeaderLen, n)
	}
	payload := b[ckptHeaderLen:]
	if crc32.ChecksumIEEE(payload) != binary.LittleEndian.Uint32(b[24:28]) {
		return nil, fmt.Errorf("%w: %s: payload CRC mismatch", ErrPartialCheckpoint, name)
	}
	return payload, nil
}

// scanSegment replays one segment's frames into rec, skipping records
// at or before the checkpoint. It returns whether the chain may
// continue into the next segment (false on any stop condition) and,
// when stopping mid-file, the byte offset of the damage — the repair
// truncation point. stopOff -1 with cont false means the whole file
// is unusable (unreadable or bad header) and should be removed.
func scanSegment(fs FS, shard int, start uint64, expect *uint64, rec *Recovered) (cont bool, stopOff int) {
	name := segName(shard, start)
	b, err := fs.ReadFile(name)
	if err != nil {
		rec.Report.SegmentGap = true
		rec.Report.Faults = append(rec.Report.Faults, fmt.Errorf("%w: %s: %v", ErrSegmentGap, name, err))
		return false, -1
	}
	if len(b) < segHeaderLen || string(b[0:4]) != segMagic ||
		binary.LittleEndian.Uint32(b[4:8]) != version ||
		int(binary.LittleEndian.Uint32(b[8:12])) != shard ||
		binary.LittleEndian.Uint64(b[12:20]) != start {
		rec.Report.TornTail++
		rec.Report.Faults = append(rec.Report.Faults, fmt.Errorf("%w: %s: bad segment header", ErrTornTail, name))
		return false, -1
	}
	off := segHeaderLen
	for off < len(b) {
		rem := len(b) - off
		if rem < frameHdrLen {
			rec.Report.TornTail++
			rec.Report.Faults = append(rec.Report.Faults,
				fmt.Errorf("%w: %s: %d trailing bytes at offset %d", ErrTornTail, name, rem, off))
			return false, off
		}
		lenFlags := binary.LittleEndian.Uint32(b[off : off+4])
		n := int(lenFlags &^ gapFlag)
		if n > maxFrame || frameHdrLen+n > rem {
			rec.Report.TornTail++
			rec.Report.Faults = append(rec.Report.Faults,
				fmt.Errorf("%w: %s: frame at offset %d claims %d bytes, %d remain", ErrTornTail, name, off, n, rem-frameHdrLen))
			return false, off
		}
		frame := b[off : off+frameHdrLen+n]
		if crc32.ChecksumIEEE(frame[8:]) != binary.LittleEndian.Uint32(frame[4:8]) {
			if off+frameHdrLen+n == len(b) {
				rec.Report.TornTail++
				rec.Report.Faults = append(rec.Report.Faults,
					fmt.Errorf("%w: %s: final frame at offset %d fails CRC", ErrTornTail, name, off))
			} else {
				rec.Report.BadCRC++
				rec.Report.Faults = append(rec.Report.Faults,
					fmt.Errorf("%w: %s: frame at offset %d", ErrBadCRC, name, off))
			}
			return false, off
		}
		lsn := binary.LittleEndian.Uint64(frame[8:16])
		if lenFlags&gapFlag != 0 {
			if lsn >= *expect {
				rec.Report.GapStop = true
				from := binary.LittleEndian.Uint64(frame[frameHdrLen:])
				rec.Report.Faults = append(rec.Report.Faults,
					fmt.Errorf("%w: %s: records %d..%d shed", ErrShedGap, name, from, lsn))
				return false, off
			}
			off += frameHdrLen + n
			continue
		}
		switch {
		case lsn < *expect:
			// Pre-checkpoint record: superseded, skip.
		case lsn > *expect:
			rec.Report.SegmentGap = true
			rec.Report.Faults = append(rec.Report.Faults,
				fmt.Errorf("%w: %s: LSN %d where %d expected", ErrSegmentGap, name, lsn, *expect))
			return false, off
		default:
			payload := make([]byte, n)
			copy(payload, frame[frameHdrLen:])
			rec.Records = append(rec.Records, payload)
			*expect++
		}
		off += frameHdrLen + n
	}
	return true, -1
}

// Shards lists the shard indexes that have journal files on fs — the
// recovery entry point uses it to reject a shard-count mismatch.
func Shards(fs FS) ([]int, error) {
	names, err := fs.List()
	if err != nil {
		return nil, err
	}
	seen := map[int]bool{}
	for _, n := range names {
		if _, sh, _, ok := parseName(strings.TrimSuffix(n, ".tmp")); ok {
			seen[sh] = true
		}
	}
	out := make([]int, 0, len(seen))
	for sh := range seen {
		out = append(out, sh)
	}
	sort.Ints(out)
	return out, nil
}
