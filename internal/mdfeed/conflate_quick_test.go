package mdfeed

// Satellite: property test that conflation is lossless-in-the-limit —
// a conflated stream (arbitrary ring overflows, gaps, reconnects)
// applied on top of snapshot recovery converges to exactly the book
// state the unconflated delta stream produces. testing/quick drives
// the op mix, subscriber ring size and drain cadence from random
// seeds; the seeded cases below pin the gap/reconnect corners the
// quick config might miss.

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// convergenceRound drives one randomized session: a tiny-ring
// conflating subscriber that drains rarely, an unbounded subscriber
// that drains always, and a churner that unsubscribes/resubscribes —
// all must land on the live book state at quiesce.
func convergenceRound(t *testing.T, seed int64, ops int, ring int, drainEvery int, journal int) bool {
	t.Helper()
	f := NewFeed("Q", 1, Options{SyncFanout: true, BatchMax: 4, Journal: journal})
	d := newDriver(f, seed)
	rng := rand.New(rand.NewSource(seed ^ 0x5eed))

	slow := f.Subscribe(SubOptions{Queue: ring})
	full := f.Subscribe(SubOptions{Queue: ring, NoConflate: true})
	churn := f.Subscribe(SubOptions{Queue: ring})
	mSlow, mFull, mChurn := NewMirror(), NewMirror(), NewMirror()

	for i := 0; i < ops; i++ {
		d.step()
		if i%drainEvery == 0 {
			slow.Drain(mSlow.Apply)
		}
		full.Drain(mFull.Apply)
		if rng.Intn(20) == 0 { // reconnect: drop all state, rejoin late
			f.Unsubscribe(churn)
			churn = f.Subscribe(SubOptions{Queue: ring})
			mChurn = NewMirror()
		} else if rng.Intn(3) == 0 {
			churn.Drain(mChurn.Apply)
		}
	}
	slow.Drain(mSlow.Apply)
	full.Drain(mFull.Apply)
	churn.Drain(mChurn.Apply)

	truth := BookState(d.book)
	if !mFull.Equal(truth) {
		t.Logf("seed %d: unconflated diverged\ngot:\n%vwant:\n%v", seed, mFull, truth)
		return false
	}
	if !mSlow.Equal(truth) {
		t.Logf("seed %d: conflated diverged\ngot:\n%vwant:\n%v", seed, mSlow, truth)
		return false
	}
	if !mChurn.Equal(truth) {
		t.Logf("seed %d: reconnecting diverged\ngot:\n%vwant:\n%v", seed, mChurn, truth)
		return false
	}
	// The unconflated subscriber saw the full stream; the conflated
	// one converged to the same state — the conflation property.
	if full.Delivered() != f.Deltas() {
		t.Logf("seed %d: unconflated delivered %d of %d", seed, full.Delivered(), f.Deltas())
		return false
	}
	return true
}

// TestQuickConflationConverges: testing/quick over random seeds and
// shapes.
func TestQuickConflationConverges(t *testing.T) {
	cfg := &quick.Config{MaxCount: 25, Rand: rand.New(rand.NewSource(1))}
	prop := func(seed int64, rawRing, rawDrain, rawJournal uint8) bool {
		ring := 1 + int(rawRing)%8
		drainEvery := 1 + int(rawDrain)%50
		journal := 2 + int(rawJournal)%64
		return convergenceRound(t, seed, 400, ring, drainEvery, journal)
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestSeededGapReconnect pins the named corners: journal smaller than
// any realistic gap (always snapshot recovery), journal larger than
// the whole session (always replay), drain-once-at-the-end, and
// frequent reconnects.
func TestSeededGapReconnect(t *testing.T) {
	cases := []struct {
		name                           string
		seed                           int64
		ops, ring, drainEvery, journal int
	}{
		{"snapshot-recovery-only", 2, 600, 1, 600, 2},
		{"journal-replay-only", 3, 600, 1, 600, 8192},
		{"tiny-ring-constant-overflow", 4, 800, 1, 7, 64},
		{"balanced", 5, 500, 4, 16, 128},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if !convergenceRound(t, c.seed, c.ops, c.ring, c.drainEvery, c.journal) {
				t.Fatal("did not converge")
			}
		})
	}
}
