package mdfeed

// Satellite: property test that conflation is lossless-in-the-limit —
// a conflated stream (arbitrary ring overflows, gaps, reconnects)
// applied on top of snapshot recovery converges to exactly the book
// state the unconflated delta stream produces. testing/quick drives
// the op mix, subscriber ring size and drain cadence from random
// seeds; the seeded cases below pin the gap/reconnect corners the
// quick config might miss.

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

// fakeClock is the injectable Options.Now for deterministic
// time-windowed conflation tests.
type fakeClock struct{ t time.Time }

func (c *fakeClock) Now() time.Time          { return c.t }
func (c *fakeClock) Advance(d time.Duration) { c.t = c.t.Add(d) }

// convergenceRound drives one randomized session: a tiny-ring
// conflating subscriber that drains rarely, an unbounded subscriber
// that drains always, a time-windowed subscriber on a fake clock,
// and a churner that unsubscribes/resubscribes — all must land on
// the live book state at quiesce.
func convergenceRound(t *testing.T, seed int64, ops int, ring int, drainEvery int, journal int) bool {
	t.Helper()
	clk := &fakeClock{t: time.Unix(1000, 0)}
	const window = 10 * time.Millisecond
	f := NewFeed("Q", 1, Options{SyncFanout: true, BatchMax: 4, Journal: journal, Now: clk.Now})
	d := newDriver(f, seed)
	rng := rand.New(rand.NewSource(seed ^ 0x5eed))

	slow := f.Subscribe(SubOptions{Queue: ring})
	full := f.Subscribe(SubOptions{Queue: ring, NoConflate: true})
	win := f.Subscribe(SubOptions{ConflateWindow: window})
	churn := f.Subscribe(SubOptions{Queue: ring})
	mSlow, mFull, mWin, mChurn := NewMirror(), NewMirror(), NewMirror(), NewMirror()

	winReleases := 0
	var elapsed time.Duration
	for i := 0; i < ops; i++ {
		d.step()
		if i%drainEvery == 0 {
			slow.Drain(mSlow.Apply)
		}
		full.Drain(mFull.Apply)
		// The windowed subscriber polls every step; the window, not the
		// poll cadence, throttles its releases.
		step := time.Duration(rng.Intn(5)) * time.Millisecond
		clk.Advance(step)
		elapsed += step
		if _, rec := win.Drain(mWin.Apply); rec {
			winReleases++
		}
		if rng.Intn(20) == 0 { // reconnect: drop all state, rejoin late
			f.Unsubscribe(churn)
			churn = f.Subscribe(SubOptions{Queue: ring})
			mChurn = NewMirror()
		} else if rng.Intn(3) == 0 {
			churn.Drain(mChurn.Apply)
		}
	}
	slow.Drain(mSlow.Apply)
	full.Drain(mFull.Apply)
	churn.Drain(mChurn.Apply)
	clk.Advance(window) // the final windowed release is always due
	if _, rec := win.Drain(mWin.Apply); rec {
		winReleases++
	}

	truth := BookState(d.book)
	if !mFull.Equal(truth) {
		t.Logf("seed %d: unconflated diverged\ngot:\n%vwant:\n%v", seed, mFull, truth)
		return false
	}
	if !mSlow.Equal(truth) {
		t.Logf("seed %d: conflated diverged\ngot:\n%vwant:\n%v", seed, mSlow, truth)
		return false
	}
	if !mChurn.Equal(truth) {
		t.Logf("seed %d: reconnecting diverged\ngot:\n%vwant:\n%v", seed, mChurn, truth)
		return false
	}
	if !mWin.Equal(truth) {
		t.Logf("seed %d: windowed diverged\ngot:\n%vwant:\n%v", seed, mWin, truth)
		return false
	}
	// Cadence bound: at most one release per elapsed window (+1 for
	// the immediate first release, +1 for the forced final one).
	if max := int(elapsed/window) + 2; winReleases > max {
		t.Logf("seed %d: %d windowed releases over %v (window %v) exceeds %d",
			seed, winReleases, elapsed, window, max)
		return false
	}
	// The unconflated subscriber saw the full stream; the conflated
	// one converged to the same state — the conflation property.
	if full.Delivered() != f.Deltas() {
		t.Logf("seed %d: unconflated delivered %d of %d", seed, full.Delivered(), f.Deltas())
		return false
	}
	return true
}

// TestQuickConflationConverges: testing/quick over random seeds and
// shapes.
func TestQuickConflationConverges(t *testing.T) {
	cfg := &quick.Config{MaxCount: 25, Rand: rand.New(rand.NewSource(1))}
	prop := func(seed int64, rawRing, rawDrain, rawJournal uint8) bool {
		ring := 1 + int(rawRing)%8
		drainEvery := 1 + int(rawDrain)%50
		journal := 2 + int(rawJournal)%64
		return convergenceRound(t, seed, 400, ring, drainEvery, journal)
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestSeededGapReconnect pins the named corners: journal smaller than
// any realistic gap (always snapshot recovery), journal larger than
// the whole session (always replay), drain-once-at-the-end, and
// frequent reconnects.
func TestSeededGapReconnect(t *testing.T) {
	cases := []struct {
		name                           string
		seed                           int64
		ops, ring, drainEvery, journal int
	}{
		{"snapshot-recovery-only", 2, 600, 1, 600, 2},
		{"journal-replay-only", 3, 600, 1, 600, 8192},
		{"tiny-ring-constant-overflow", 4, 800, 1, 7, 64},
		{"balanced", 5, 500, 4, 16, 128},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if !convergenceRound(t, c.seed, c.ops, c.ring, c.drainEvery, c.journal) {
				t.Fatal("did not converge")
			}
		})
	}
}

// TestWindowedConflationCadence pins the windowed contract on a fake
// clock: the first release is immediate, nothing is released inside
// an open window no matter how much arrives, the next poll at/after
// the deadline catches up to the live book in one call, and an empty
// poll does not burn the window.
func TestWindowedConflationCadence(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	f := NewFeed("W", 1, Options{SyncFanout: true, BatchMax: 4, Journal: 64, Now: clk.Now})
	d := newDriver(f, 7)
	w := f.Subscribe(SubOptions{ConflateWindow: 10 * time.Millisecond})
	m := NewMirror()

	for f.Seq() == 0 {
		d.step() // some ops (cancels on an empty book) emit nothing
	}
	if n, rec := w.Drain(m.Apply); n == 0 || !rec {
		t.Fatalf("first release not immediate: n=%d rec=%v", n, rec)
	}
	// Flood inside the window: no release.
	for i := 0; i < 200; i++ {
		d.step()
	}
	clk.Advance(9 * time.Millisecond)
	if n, _ := w.Drain(m.Apply); n != 0 {
		t.Fatalf("released %d deltas inside an open window", n)
	}
	clk.Advance(1 * time.Millisecond)
	n, rec := w.Drain(m.Apply)
	if n == 0 || !rec {
		t.Fatalf("due window did not release: n=%d rec=%v", n, rec)
	}
	if truth := BookState(d.book); !m.Equal(truth) {
		t.Fatalf("windowed catch-up diverged\ngot:\n%vwant:\n%v", m, truth)
	}
	// An empty poll past the deadline leaves the window open, so the
	// next delta is deliverable immediately.
	clk.Advance(20 * time.Millisecond)
	if n, _ := w.Drain(m.Apply); n != 0 {
		t.Fatalf("quiet feed released %d deltas", n)
	}
	for last := f.Seq(); f.Seq() == last; {
		d.step()
	}
	if n, rec := w.Drain(m.Apply); n == 0 || !rec {
		t.Fatalf("post-quiet release not immediate: n=%d rec=%v", n, rec)
	}
	if truth := BookState(d.book); !m.Equal(truth) {
		t.Fatal("final state diverged")
	}
	if w.Delivered() != 0 {
		t.Fatalf("windowed subscriber counted %d in-sequence deltas; all its deltas are catch-ups", w.Delivered())
	}
	if w.Recovered() == 0 {
		t.Fatal("no recovered deltas counted")
	}
}
