package mdfeed

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/labels"
	"repro/internal/orderbook"
	"repro/internal/tags"
)

// driver couples a live book to a feed the way a broker shard does:
// depth hook staged into the feed, one Flush per op.
type driver struct {
	book *orderbook.Book
	feed *Feed
	ids  []int64
	next int64
	now  int64
	rng  *rand.Rand
}

func newDriver(f *Feed, seed int64) *driver {
	d := &driver{book: orderbook.New(), feed: f, next: 1, rng: rand.New(rand.NewSource(seed))}
	d.book.SetDepthHook(f.IngestLevel)
	return d
}

// step runs one random book op and flushes the feed.
func (d *driver) step() {
	d.now++
	side := orderbook.Side(d.rng.Intn(2))
	price := int64(100 + d.rng.Intn(12))
	qty := int64(1 + d.rng.Intn(6))
	switch d.rng.Intn(8) {
	case 0, 1, 2, 3:
		id := d.next
		d.next++
		if _, rested := d.book.Limit(id, side, price, qty, orderbook.Owner{Name: "t"}, d.now, nil); rested {
			d.ids = append(d.ids, id)
		}
	case 4:
		d.book.Market(side, qty, nil)
	case 5:
		if len(d.ids) > 0 {
			j := d.rng.Intn(len(d.ids))
			d.book.Cancel(d.ids[j])
			d.ids = append(d.ids[:j], d.ids[j+1:]...)
		}
	case 6:
		if len(d.ids) > 0 {
			d.book.Amend(d.ids[d.rng.Intn(len(d.ids))], price, qty, d.now, nil)
		}
	case 7:
		d.book.Expire(d.now-int64(d.rng.Intn(30)), nil)
	}
	d.feed.Flush()
}

func drainInto(t *testing.T, s *Subscription, m *L2Mirror) (int, bool) {
	t.Helper()
	return s.Drain(m.Apply)
}

// TestFeedTracksBook: a subscriber draining every batch reconstructs
// the book's exact level state, continuously.
func TestFeedTracksBook(t *testing.T) {
	f := NewFeed("ACME", 1, Options{SyncFanout: true})
	d := newDriver(f, 7)
	s := f.Subscribe(SubOptions{Queue: 1024})
	m := NewMirror()
	for i := 0; i < 3000; i++ {
		d.step()
		if _, recovered := drainInto(t, s, m); recovered {
			t.Fatalf("op %d: live subscriber should never need recovery", i)
		}
		if truth := BookState(d.book); !m.Equal(truth) {
			t.Fatalf("op %d: mirror diverged\nmirror:\n%vtruth:\n%v", i, m, truth)
		}
	}
	if f.Deltas() == 0 || f.Batches() == 0 {
		t.Fatalf("no traffic: %d deltas / %d batches", f.Deltas(), f.Batches())
	}
	if s.Delivered() != f.Deltas() {
		t.Fatalf("delivered %d != emitted %d", s.Delivered(), f.Deltas())
	}
}

// TestSequenceDense: emitted deltas are densely sequence-numbered
// from 1 with batches covering [First..Last] exactly.
func TestSequenceDense(t *testing.T) {
	f := NewFeed("ACME", 1, Options{SyncFanout: true, BatchMax: 3})
	d := newDriver(f, 13)
	s := f.Subscribe(SubOptions{Queue: 4096})
	var want uint64
	apply := func(dl Delta) {
		want++
		if dl.Seq != want {
			t.Fatalf("seq %d, want %d", dl.Seq, want)
		}
	}
	for i := 0; i < 500; i++ {
		d.step()
	}
	if _, recovered := s.Drain(apply); recovered {
		t.Fatal("unexpected recovery")
	}
	if want != f.Seq() {
		t.Fatalf("applied %d, feed at %d", want, f.Seq())
	}
}

// TestLateJoinerSnapshot: subscribing after history starts gapped and
// the first Drain recovers straight to the live book state.
func TestLateJoinerSnapshot(t *testing.T) {
	f := NewFeed("ACME", 1, Options{SyncFanout: true, Journal: 8})
	d := newDriver(f, 21)
	for i := 0; i < 800; i++ {
		d.step()
	}
	s := f.Subscribe(SubOptions{})
	m := NewMirror()
	n, recovered := drainInto(t, s, m)
	if !recovered || n == 0 {
		t.Fatalf("late joiner: n=%d recovered=%v", n, recovered)
	}
	if truth := BookState(d.book); !m.Equal(truth) {
		t.Fatalf("late joiner diverged\nmirror:\n%vtruth:\n%v", m, truth)
	}
	if s.LastSeq() != f.Seq() {
		t.Fatalf("lastSeq %d != feed seq %d", s.LastSeq(), f.Seq())
	}
	// And the subscriber is live from here on.
	for i := 0; i < 200; i++ {
		d.step()
		if _, rec := drainInto(t, s, m); rec {
			t.Fatalf("op %d after join: unexpected recovery", i)
		}
	}
	if truth := BookState(d.book); !m.Equal(truth) {
		t.Fatal("post-join stream diverged")
	}
}

// TestConflationBoundedAndRecovers: a slow subscriber's ring
// overflows, the backlog is dropped (bounded memory), and the next
// Drain lands on the live state via journal replay.
func TestConflationBoundedAndRecovers(t *testing.T) {
	f := NewFeed("ACME", 1, Options{SyncFanout: true, BatchMax: 4})
	d := newDriver(f, 33)
	s := f.Subscribe(SubOptions{Queue: 2})
	m := NewMirror()
	for i := 0; i < 600; i++ {
		d.step()
	}
	if f.Conflations() == 0 {
		t.Fatal("expected ring overflow conflation")
	}
	// Bounded: nothing beyond the ring is retained.
	s.mu.Lock()
	queued := int(s.tail-s.head) + len(s.overflow)
	s.mu.Unlock()
	if queued > 2 {
		t.Fatalf("conflating subscriber retains %d batches", queued)
	}
	sawReset := false
	n, recovered := s.Drain(func(dl Delta) {
		if dl.Kind == Reset {
			sawReset = true
		}
		m.Apply(dl)
	})
	if !recovered {
		t.Fatalf("n=%d: expected recovery after conflation", n)
	}
	if truth := BookState(d.book); !m.Equal(truth) {
		t.Fatalf("recovered mirror diverged\nmirror:\n%vtruth:\n%v", m, truth)
	}
	// Default journal (4096) easily covers 600 ops: replay, not reset.
	if sawReset {
		t.Fatal("journal replay path should not emit Reset")
	}
}

// TestTinyJournalFallsBackToSnapshot: when the gap outruns the
// journal, recovery is Reset + latest-state snapshot.
func TestTinyJournalFallsBackToSnapshot(t *testing.T) {
	f := NewFeed("ACME", 1, Options{SyncFanout: true, Journal: 4})
	d := newDriver(f, 44)
	s := f.Subscribe(SubOptions{Queue: 1})
	for i := 0; i < 500; i++ {
		d.step()
	}
	m := NewMirror()
	sawReset := false
	_, recovered := s.Drain(func(dl Delta) {
		if dl.Kind == Reset {
			sawReset = true
		}
		m.Apply(dl)
	})
	if !recovered || !sawReset {
		t.Fatalf("recovered=%v sawReset=%v: want snapshot recovery", recovered, sawReset)
	}
	if truth := BookState(d.book); !m.Equal(truth) {
		t.Fatalf("snapshot recovery diverged\nmirror:\n%vtruth:\n%v", m, truth)
	}
}

// TestUnconflatedKeepsEverything: NoConflate spills past the ring and
// delivers the full stream with no recovery.
func TestUnconflatedKeepsEverything(t *testing.T) {
	f := NewFeed("ACME", 1, Options{SyncFanout: true, BatchMax: 4})
	d := newDriver(f, 55)
	s := f.Subscribe(SubOptions{Queue: 2, NoConflate: true})
	for i := 0; i < 400; i++ {
		d.step()
	}
	m := NewMirror()
	_, recovered := drainInto(t, s, m)
	if recovered {
		t.Fatal("unconflated stream should never recover")
	}
	if s.Delivered() != f.Deltas() {
		t.Fatalf("delivered %d != emitted %d", s.Delivered(), f.Deltas())
	}
	if truth := BookState(d.book); !m.Equal(truth) {
		t.Fatal("unconflated mirror diverged")
	}
}

// TestLabelChecksScaleWithBatches is the amortization proof from the
// acceptance criteria: many subscribers in few label classes cost one
// CanFlowTo per (batch, class) — checks == batches × classes no
// matter the subscriber count — and denied classes receive nothing.
func TestLabelChecksScaleWithBatches(t *testing.T) {
	store := tags.NewStore(1)
	md := store.Create("mdfeed", "boot")
	feedLabel := labels.New(labels.NewSet(md), labels.NewSet())
	f := NewFeed("ACME", 1, Options{SyncFanout: true, Label: feedLabel, CheckLabels: true})

	const perClass = 50
	entitled := make([]*Subscription, perClass)
	public := make([]*Subscription, perClass)
	for i := range entitled {
		entitled[i] = f.Subscribe(SubOptions{Label: feedLabel, Queue: 4096})
		public[i] = f.Subscribe(SubOptions{Queue: 4096}) // Public: S={md} ⊄ {} denies
	}
	if f.Classes() != 2 || f.Subscribers() != 2*perClass {
		t.Fatalf("classes=%d subs=%d", f.Classes(), f.Subscribers())
	}

	d := newDriver(f, 66)
	for i := 0; i < 400; i++ {
		d.step()
	}
	batches := f.Batches()
	if batches == 0 {
		t.Fatal("no batches")
	}
	if got, want := f.LabelChecks(), 2*batches; got != want {
		t.Fatalf("labelChecks=%d, want batches×classes=%d (batches=%d)", got, want, batches)
	}
	if got, want := f.LabelDenied(), batches; got != want {
		t.Fatalf("labelDenied=%d, want %d", got, want)
	}
	m := NewMirror()
	if _, rec := drainInto(t, entitled[0], m); rec {
		t.Fatal("entitled subscriber should stream live")
	}
	if truth := BookState(d.book); !m.Equal(truth) {
		t.Fatal("entitled mirror diverged")
	}
	for i, s := range public {
		if n, _ := s.Drain(func(Delta) {}); n != 0 || s.Delivered() != 0 {
			t.Fatalf("public[%d] received %d deltas across the flow check", i, n)
		}
	}
}

// TestNoSecuritySkipsChecks: with CheckLabels off every class
// receives everything and no checks run.
func TestNoSecuritySkipsChecks(t *testing.T) {
	store := tags.NewStore(1)
	md := store.Create("mdfeed", "boot")
	f := NewFeed("ACME", 1, Options{SyncFanout: true,
		Label: labels.New(labels.NewSet(md), labels.NewSet())})
	a := f.Subscribe(SubOptions{Queue: 4096})
	d := newDriver(f, 77)
	for i := 0; i < 200; i++ {
		d.step()
	}
	if f.LabelChecks() != 0 {
		t.Fatalf("labelChecks=%d with security off", f.LabelChecks())
	}
	m := NewMirror()
	drainInto(t, a, m)
	if truth := BookState(d.book); !m.Equal(truth) {
		t.Fatal("mirror diverged")
	}
}

// TestUnsubscribeReleasesQueued: unsubscribing releases held batches
// and stops delivery.
func TestUnsubscribeReleasesQueued(t *testing.T) {
	f := NewFeed("ACME", 1, Options{SyncFanout: true})
	d := newDriver(f, 88)
	s := f.Subscribe(SubOptions{Queue: 1024})
	for i := 0; i < 100; i++ {
		d.step()
	}
	f.Unsubscribe(s)
	if f.Subscribers() != 0 {
		t.Fatalf("subscribers=%d after unsubscribe", f.Subscribers())
	}
	before := f.Batches()
	for i := 0; i < 100; i++ {
		d.step()
	}
	if f.Batches() == before {
		t.Fatal("feed stopped sealing")
	}
	if n, _ := s.Drain(func(Delta) {}); n != 0 {
		t.Fatalf("closed subscription drained %d deltas", n)
	}
}

// TestSnapshotInto: the explicit snapshot handshake hands a late
// joiner the current state and a cursor Drain continues from.
func TestSnapshotInto(t *testing.T) {
	f := NewFeed("ACME", 1, Options{SyncFanout: true})
	d := newDriver(f, 99)
	for i := 0; i < 300; i++ {
		d.step()
	}
	m := NewMirror()
	at := f.SnapshotInto(m.Apply)
	if at != f.Seq() {
		t.Fatalf("snapshot at %d, feed at %d", at, f.Seq())
	}
	if truth := BookState(d.book); !m.Equal(truth) {
		t.Fatal("snapshot diverged")
	}
}

// TestZeroAllocSteadyState pins the acceptance criterion: ingest →
// flush → fanout → drain allocates nothing per delta once the
// pipeline is warm.
func TestZeroAllocSteadyState(t *testing.T) {
	f := NewFeed("ACME", 1, Options{SyncFanout: true, CheckLabels: true})
	s := f.Subscribe(SubOptions{Queue: 16})
	var applied int
	apply := func(Delta) { applied++ }
	// Warm: touch both qty states so the mirror map and free ring are
	// fully grown.
	for i := 0; i < 64; i++ {
		f.IngestLevel(orderbook.Bid, 100, int64(5+i%2), 1)
		f.Flush()
		s.Drain(apply)
	}
	qty := int64(0)
	avg := testing.AllocsPerRun(500, func() {
		qty++
		f.IngestLevel(orderbook.Bid, 100, 5+qty%2, 1)
		f.Flush()
		s.Drain(apply)
	})
	if avg > 0 {
		t.Fatalf("steady-state delivery allocates %.2f/op", avg)
	}
	if applied == 0 {
		t.Fatal("nothing applied")
	}
}

// TestHubRoutesAndAggregates: per-symbol feeds are create-on-demand,
// namespaced, and counters aggregate.
func TestHubRoutesAndAggregates(t *testing.T) {
	h := NewHub(HubConfig{SyncFanout: true, NS: func(sym string) int64 { return int64(len(sym)) }})
	fa := h.Feed("A")
	fbb := h.Feed("BB")
	if h.Feed("A") != fa {
		t.Fatal("Feed not idempotent")
	}
	if fa.NS() != 1 || fbb.NS() != 2 {
		t.Fatalf("ns: %d, %d", fa.NS(), fbb.NS())
	}
	if h.Lookup("CCC") != nil || h.Symbols() != 2 {
		t.Fatal("lookup/symbols wrong")
	}
	da := newDriver(fa, 5)
	db := newDriver(fbb, 6)
	for i := 0; i < 100; i++ {
		da.step()
		db.step()
	}
	st := h.Stats()
	if st.Feeds != 2 || st.Deltas != fa.Deltas()+fbb.Deltas() {
		t.Fatalf("stats %+v", st)
	}
	h.Close()
}

// TestAsyncFanoutDelivers exercises the real (goroutine) fanout path
// end to end with Quiesce.
func TestAsyncFanoutDelivers(t *testing.T) {
	f := NewFeed("ACME", 1, Options{})
	defer f.Close()
	d := newDriver(f, 111)
	s := f.Subscribe(SubOptions{Queue: 8192, NoConflate: true})
	for i := 0; i < 1000; i++ {
		d.step()
	}
	if !f.Quiesce(5 * time.Second) {
		t.Fatal("fanout did not drain")
	}
	m := NewMirror()
	_, recovered := drainInto(t, s, m)
	if f.LostBatches() == 0 && recovered {
		t.Fatal("recovery without batch loss")
	}
	if truth := BookState(d.book); !m.Equal(truth) {
		t.Fatalf("async mirror diverged\nmirror:\n%vtruth:\n%v", m, truth)
	}
}
