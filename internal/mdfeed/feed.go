// Package mdfeed implements the conflated, delta-encoded market-data
// fanout: a per-symbol L2 feed fed by the order book's level-delta
// hook, serving tens of thousands of subscribers per symbol.
//
// The pipeline has three stages with strictly bounded coupling:
//
//  1. Ingest (matching thread). The owning broker shard's book calls
//     IngestLevel for every level change; the feed stages the raw
//     change into a reused pending buffer — no lock, no allocation.
//     At the end of each processed order the shard calls Flush: under
//     one short lock the staged changes are coalesced to latest-state
//     per level, sequence-numbered, journaled, classified as
//     add/modify/delete against the feed's live mirror, and sealed
//     into an immutable pooled Batch. The batch is offered to the
//     fanout ring with a non-blocking send — the matching path NEVER
//     waits on consumers.
//
//  2. Fanout (one goroutine per feed, or inline in SyncFanout mode).
//     Subscribers are grouped into label classes (identical input
//     labels); per batch the DEFC flow check runs ONCE PER CLASS —
//     batch.Label.CanFlowTo(class.label) — not once per subscriber,
//     then the shared immutable batch pointer is appended to each
//     subscriber's preallocated ring. Steady-state delivery is a
//     pointer write and a refcount increment: zero allocations per
//     subscriber.
//
//  3. Drain (consumer threads, poll-based). Drain applies batches in
//     sequence order. A subscriber that falls behind — ring overflow
//     (conflation), a dropped fanout batch, or a late join — detects
//     the sequence gap and recovers: if the gap fits the journal it
//     replays the missed deltas; otherwise it receives a Reset marker
//     followed by the mirror's latest-state-per-level snapshot, which
//     is exactly conflation-to-current-state with memory bounded by
//     the book's level count, never by the backlog. A subscriber may
//     instead opt into time-windowed conflation (ConflateWindow): it
//     queues nothing and Drain releases at most one catch-up per
//     window — coalescing across the window regardless of queue
//     pressure, the cadence contract slow consumers actually want.
//
// Label soundness (DESIGN-dispatch.md §10): every delta in a batch
// derives from order events whose book-visible parts are confined to
// the dark-pool label {b}; the batch label is the join of its inputs,
// declassified once by the broker (which owns b±) to the feed's
// entitlement label. Because the label is constant across a batch and
// subscribers in a class share one input label, one check per
// (batch, class) decides delivery for every subscriber exactly as
// per-subscriber checks would.
package mdfeed

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/labels"
	"repro/internal/orderbook"
)

// Kind classifies one delta.
type Kind uint8

const (
	// Add reports a price level coming into existence.
	Add Kind = iota
	// Modify reports an existing level's aggregates changing.
	Modify
	// Delete reports a level emptying out.
	Delete
	// Reset is a recovery marker: the subscriber's state is stale
	// beyond repair from deltas; discard it — a latest-state snapshot
	// (a run of Add deltas sharing the Reset's sequence) follows.
	Reset
)

// Delta is one sequence-numbered L2 book change. Sequence numbers are
// dense per feed (per symbol), starting at 1.
type Delta struct {
	Seq    uint64
	Kind   Kind
	Side   orderbook.Side
	Price  int64
	Qty    int64
	Orders int32
}

// Batch is a sealed, immutable run of consecutive deltas shared by
// every subscriber it is delivered to. Batches are pooled: the feed
// holds one reference while fanning out and each delivered subscriber
// holds one until it drains the batch.
type Batch struct {
	First, Last uint64
	Label       labels.Label
	Deltas      []Delta

	feed *Feed
	refs atomic.Int32
}

// release drops one reference, recycling the batch at zero.
func (b *Batch) release() {
	if b.refs.Add(-1) == 0 {
		select {
		case b.feed.free <- b:
		default:
		}
	}
}

// Options tune one feed. The zero value of any field selects its
// default.
type Options struct {
	// Label is the batch label: the declassified join of the feed's
	// inputs (see package comment). Subscribers receive a batch iff
	// Label.CanFlowTo(subscriber label).
	Label labels.Label
	// CheckLabels enables the DEFC flow check (false reproduces the
	// no-security mode: every class receives everything).
	CheckLabels bool
	// Journal is the delta-journal ring size — the largest sequence
	// gap recoverable by replay instead of snapshot (default 4096).
	Journal int
	// FanoutRing bounds the sealed-batch queue between the matching
	// thread and the fanout goroutine (default 256). On overflow the
	// batch is dropped, not waited for; subscribers recover via the
	// sequence gap.
	FanoutRing int
	// BatchMax bounds deltas per sealed batch (default 512).
	BatchMax int
	// DefaultQueue is the subscriber ring capacity when SubOptions
	// leaves it zero (default 64).
	DefaultQueue int
	// SyncFanout runs fanout inline in Flush instead of on a
	// goroutine. Deterministic — for tests and single-threaded
	// benchmarks; the matching path then does pay fanout cost.
	SyncFanout bool
	// Now is the clock consulted by time-windowed subscribers
	// (default time.Now). Injectable for deterministic tests.
	Now func() time.Time
}

func (o *Options) defaults() {
	if o.Now == nil {
		o.Now = time.Now
	}
	if o.Journal <= 0 {
		o.Journal = 4096
	}
	if o.FanoutRing <= 0 {
		o.FanoutRing = 256
	}
	if o.BatchMax <= 0 {
		o.BatchMax = 512
	}
	if o.DefaultQueue <= 0 {
		o.DefaultQueue = 64
	}
}

// staged is one raw level change awaiting Flush.
type staged struct {
	side   orderbook.Side
	price  int64
	qty    int64
	orders int32
}

// levelKey identifies a price level.
type levelKey struct {
	Side  orderbook.Side
	Price int64
}

// levelVal is a level's mirrored aggregates.
type levelVal struct {
	Qty    int64
	Orders int32
}

// subClass groups subscribers sharing one input label; the per-batch
// flow check runs once per class.
type subClass struct {
	label labels.Label
	subs  []*Subscription
}

// Feed is one symbol's market-data feed.
type Feed struct {
	symbol string
	ns     int64
	opts   Options

	// pending stages raw level changes between Flush calls; touched
	// only by the ingest (matching) thread.
	pending []staged

	// mu guards seq, mirror and journal — written by Flush, read by
	// recovery and snapshots.
	mu      sync.RWMutex
	seq     uint64
	mirror  map[levelKey]levelVal
	journal []Delta

	// fanout plumbing.
	queue    chan *Batch
	free     chan *Batch
	inflight atomic.Int64
	stopped  atomic.Bool
	wg       sync.WaitGroup

	// submu guards the class table.
	submu   sync.RWMutex
	classes map[string]*subClass
	order   []*subClass // stable iteration order for fanout

	// counters.
	batches     atomic.Uint64
	deltas      atomic.Uint64
	labelChecks atomic.Uint64
	labelDenied atomic.Uint64
	conflations atomic.Uint64
	lostBatches atomic.Uint64
}

// NewFeed builds a feed for one symbol; ns is the symbol's platform
// namespace (the trade-ID namespace, so feed identities line up with
// the matching layer's per-symbol streams).
func NewFeed(symbol string, ns int64, opts Options) *Feed {
	opts.defaults()
	f := &Feed{
		symbol:  symbol,
		ns:      ns,
		opts:    opts,
		mirror:  make(map[levelKey]levelVal),
		journal: make([]Delta, opts.Journal),
		queue:   make(chan *Batch, opts.FanoutRing),
		free:    make(chan *Batch, 64),
		classes: make(map[string]*subClass),
	}
	if !opts.SyncFanout {
		f.wg.Add(1)
		go f.fanoutLoop()
	}
	return f
}

// Symbol returns the feed's symbol.
func (f *Feed) Symbol() string { return f.symbol }

// NS returns the feed's per-symbol namespace.
func (f *Feed) NS() int64 { return f.ns }

// Seq returns the last assigned delta sequence number.
func (f *Feed) Seq() uint64 {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return f.seq
}

// Batches reports sealed batches.
func (f *Feed) Batches() uint64 { return f.batches.Load() }

// Deltas reports sequence-numbered deltas emitted.
func (f *Feed) Deltas() uint64 { return f.deltas.Load() }

// LabelChecks reports CanFlowTo evaluations performed by the fanout —
// the amortization proof: this scales with batches × label classes,
// never with subscribers.
func (f *Feed) LabelChecks() uint64 { return f.labelChecks.Load() }

// LabelDenied reports batch×class pairs refused by the flow check.
func (f *Feed) LabelDenied() uint64 { return f.labelDenied.Load() }

// Conflations reports subscriber ring overflows resolved by dropping
// the backlog in favour of recovery.
func (f *Feed) Conflations() uint64 { return f.conflations.Load() }

// LostBatches reports batches dropped on fanout-ring overflow.
func (f *Feed) LostBatches() uint64 { return f.lostBatches.Load() }

// IngestLevel stages one raw level change; its signature matches
// orderbook.DepthFunc so a book's depth hook can be pointed straight
// at it. Must be called from the single ingest thread (the owning
// broker shard's instance goroutine). Steady state appends into a
// reused buffer: no lock, no allocation.
func (f *Feed) IngestLevel(side orderbook.Side, price, qty int64, orders int) {
	f.pending = append(f.pending, staged{side: side, price: price, qty: qty, orders: int32(orders)})
}

// Flush seals the staged changes into sequence-numbered delta batches
// and offers them to the fanout. Called by the ingest thread at each
// batch boundary (once per processed order). Never blocks on
// consumers.
func (f *Feed) Flush() {
	if len(f.pending) == 0 {
		return
	}
	// Coalesce to latest-state-per-level, preserving first-touch
	// order: a level filled five times in one order emits one delta.
	// The scan is quadratic in the per-order touch count, which the
	// book bounds at a handful of levels.
	pend := f.pending
	var sealed *Batch
	f.mu.Lock()
	for i := range pend {
		last := true
		for j := i + 1; j < len(pend); j++ {
			if pend[j].side == pend[i].side && pend[j].price == pend[i].price {
				last = false
				break
			}
		}
		if !last {
			continue
		}
		d, ok := f.classify(&pend[i])
		if !ok {
			continue
		}
		f.seq++
		d.Seq = f.seq
		f.journal[(f.seq-1)%uint64(len(f.journal))] = d
		if sealed == nil {
			sealed = f.newBatch()
		}
		sealed.Deltas = append(sealed.Deltas, d)
		if len(sealed.Deltas) >= f.opts.BatchMax {
			f.seal(sealed)
			sealed = nil
		}
	}
	if sealed != nil {
		f.seal(sealed)
	}
	f.mu.Unlock()
	f.pending = f.pending[:0]
}

// classify turns a coalesced raw change into a typed delta against
// the live mirror, updating the mirror; ok is false when the change
// nets out to nothing (a level that appeared and vanished within the
// batch, or settled back to its prior state).
func (f *Feed) classify(s *staged) (Delta, bool) {
	k := levelKey{s.side, s.price}
	cur, exists := f.mirror[k]
	if s.qty == 0 {
		if !exists {
			return Delta{}, false
		}
		delete(f.mirror, k)
		return Delta{Kind: Delete, Side: s.side, Price: s.price}, true
	}
	v := levelVal{Qty: s.qty, Orders: s.orders}
	if exists && cur == v {
		return Delta{}, false
	}
	f.mirror[k] = v
	kind := Add
	if exists {
		kind = Modify
	}
	return Delta{Kind: kind, Side: s.side, Price: s.price, Qty: s.qty, Orders: s.orders}, true
}

// newBatch draws a batch from the free ring (allocating only when the
// pipeline grows).
func (f *Feed) newBatch() *Batch {
	select {
	case b := <-f.free:
		b.Deltas = b.Deltas[:0]
		return b
	default:
		return &Batch{feed: f, Deltas: make([]Delta, 0, f.opts.BatchMax)}
	}
}

// seal stamps and publishes one batch. Called with f.mu held; the
// queue send is non-blocking so the matching path cannot stall.
func (f *Feed) seal(b *Batch) {
	b.First = b.Deltas[0].Seq
	b.Last = b.Deltas[len(b.Deltas)-1].Seq
	b.Label = f.opts.Label
	b.refs.Store(1)
	f.batches.Add(1)
	f.deltas.Add(uint64(len(b.Deltas)))
	if f.opts.SyncFanout {
		f.fanout(b)
		return
	}
	if f.stopped.Load() {
		b.release()
		return
	}
	f.inflight.Add(1)
	select {
	case f.queue <- b:
	default:
		// Fanout is behind the matching engine; drop rather than
		// block — subscribers see the gap and recover.
		f.inflight.Add(-1)
		f.lostBatches.Add(1)
		b.release()
	}
}

// fanoutLoop drains sealed batches onto subscriber rings.
func (f *Feed) fanoutLoop() {
	defer f.wg.Done()
	for b := range f.queue {
		f.fanout(b)
		f.inflight.Add(-1)
	}
}

// fanout delivers one batch: one flow check per label class, then a
// shared pointer append per subscriber.
func (f *Feed) fanout(b *Batch) {
	f.submu.RLock()
	for _, c := range f.order {
		if f.opts.CheckLabels {
			f.labelChecks.Add(1)
			if !b.Label.CanFlowTo(c.label) {
				f.labelDenied.Add(1)
				continue
			}
		}
		for _, s := range c.subs {
			b.refs.Add(1)
			if !s.push(b) {
				b.release()
			}
		}
	}
	f.submu.RUnlock()
	b.release() // the producer reference
}

// Close stops the fanout goroutine and releases queued batches. The
// ingest thread must have stopped calling IngestLevel/Flush.
func (f *Feed) Close() {
	if f.stopped.Swap(true) {
		return
	}
	if !f.opts.SyncFanout {
		close(f.queue)
		f.wg.Wait()
	}
}

// Quiesce waits until every sealed batch has been fanned out.
func (f *Feed) Quiesce(timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for f.inflight.Load() != 0 {
		if time.Now().After(deadline) {
			return false
		}
		time.Sleep(200 * time.Microsecond)
	}
	return true
}

// SubOptions configure one subscription.
type SubOptions struct {
	// Label is the subscriber's input label for the per-class flow
	// check.
	Label labels.Label
	// Queue is the subscriber ring capacity (default: the feed's
	// DefaultQueue).
	Queue int
	// NoConflate disables conflation: on ring overflow the backlog
	// grows without bound instead of collapsing to latest state — the
	// unbounded-queue strawman the benchmark compares against.
	NoConflate bool
	// ConflateWindow > 0 selects time-windowed conflation: the
	// subscriber queues nothing and Drain releases at most one
	// catch-up (journal replay or Reset+snapshot, whichever the gap
	// demands) per window — deltas are coalesced across the window
	// regardless of queue pressure, not only on ring overflow. The
	// cadence clock is Options.Now. Overrides NoConflate.
	ConflateWindow time.Duration
}

// Subscription is one consumer's handle. Delivery is poll-based:
// call Drain from the (single) consumer goroutine.
type Subscription struct {
	feed  *Feed
	label labels.Label

	mu       sync.Mutex
	ring     []*Batch
	head     uint64
	tail     uint64
	overflow []*Batch
	gapped   bool
	closed   bool
	conflate bool

	// consumer-thread state.
	lastSeq  uint64
	seenLost uint64
	window   time.Duration // > 0: time-windowed conflation
	nextDue  time.Time     // earliest next windowed release

	delivered atomic.Uint64
	recovered atomic.Uint64
}

// Subscribe registers a consumer. A subscriber joining a feed with
// history starts gapped: its first Drain performs snapshot (or
// journal) recovery — the late-joiner path.
func (f *Feed) Subscribe(o SubOptions) *Subscription {
	if o.Queue <= 0 {
		o.Queue = f.opts.DefaultQueue
	}
	s := &Subscription{
		feed:     f,
		label:    o.Label,
		ring:     make([]*Batch, o.Queue),
		conflate: !o.NoConflate || o.ConflateWindow > 0,
		window:   o.ConflateWindow,
	}
	f.mu.RLock()
	s.gapped = f.seq != 0
	f.mu.RUnlock()
	s.seenLost = f.lostBatches.Load()
	key := o.Label.Key()
	f.submu.Lock()
	c := f.classes[key]
	if c == nil {
		c = &subClass{label: o.Label}
		f.classes[key] = c
		f.order = append(f.order, c)
	}
	c.subs = append(c.subs, s)
	f.submu.Unlock()
	return s
}

// Unsubscribe removes the consumer and releases anything queued.
func (f *Feed) Unsubscribe(s *Subscription) {
	key := s.label.Key()
	f.submu.Lock()
	if c := f.classes[key]; c != nil {
		for i, x := range c.subs {
			if x == s {
				c.subs[i] = c.subs[len(c.subs)-1]
				c.subs[len(c.subs)-1] = nil
				c.subs = c.subs[:len(c.subs)-1]
				break
			}
		}
	}
	f.submu.Unlock()
	s.mu.Lock()
	s.closed = true
	s.dropQueuedLocked()
	s.mu.Unlock()
}

// Classes reports the number of live label classes.
func (f *Feed) Classes() int {
	f.submu.RLock()
	defer f.submu.RUnlock()
	return len(f.order)
}

// Subscribers reports the number of live subscriptions.
func (f *Feed) Subscribers() int {
	f.submu.RLock()
	defer f.submu.RUnlock()
	n := 0
	for _, c := range f.order {
		n += len(c.subs)
	}
	return n
}

// push offers a batch to the subscriber's ring from the fanout.
// Reports whether the subscriber keeps the reference.
func (s *Subscription) push(b *Batch) bool {
	if s.window > 0 {
		// Time-windowed subscribers queue nothing: every batch is
		// superseded by the next windowed catch-up, which reads the
		// feed's journal/mirror directly. The fanout's per-subscriber
		// cost stays a refcount bounce; memory stays zero.
		return false
	}
	s.mu.Lock()
	if s.closed || (s.gapped && s.conflate) {
		// Already due a recovery that will land at the feed's current
		// state; intermediate batches are superseded.
		s.mu.Unlock()
		return false
	}
	if s.tail-s.head < uint64(len(s.ring)) {
		s.ring[s.tail%uint64(len(s.ring))] = b
		s.tail++
		s.mu.Unlock()
		return true
	}
	if !s.conflate {
		s.overflow = append(s.overflow, b)
		s.mu.Unlock()
		return true
	}
	// Conflate: collapse the whole backlog into one future recovery —
	// bounded memory no matter how far behind the consumer is.
	s.dropQueuedLocked()
	s.gapped = true
	s.mu.Unlock()
	s.feed.conflations.Add(1)
	return false
}

// dropQueuedLocked releases every queued batch. Caller holds s.mu.
func (s *Subscription) dropQueuedLocked() {
	for s.head != s.tail {
		b := s.ring[s.head%uint64(len(s.ring))]
		s.ring[s.head%uint64(len(s.ring))] = nil
		s.head++
		b.release()
	}
	for i, b := range s.overflow {
		b.release()
		s.overflow[i] = nil
	}
	s.overflow = s.overflow[:0]
}

// pop takes the next queued batch, or reports a pending recovery.
func (s *Subscription) pop() (b *Batch, gapped, ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.gapped {
		s.gapped = false
		return nil, true, true
	}
	if s.head != s.tail {
		b = s.ring[s.head%uint64(len(s.ring))]
		s.ring[s.head%uint64(len(s.ring))] = nil
		s.head++
		return b, false, true
	}
	if len(s.overflow) > 0 {
		b = s.overflow[0]
		copy(s.overflow, s.overflow[1:])
		s.overflow[len(s.overflow)-1] = nil
		s.overflow = s.overflow[:len(s.overflow)-1]
		return b, false, true
	}
	return nil, false, false
}

// Drain applies everything queued, in sequence order, through apply.
// It returns the number of deltas applied and whether a recovery
// (journal replay or Reset+snapshot) happened. Steady state — no
// gaps — applies shared batch memory and allocates nothing.
func (s *Subscription) Drain(apply func(Delta)) (n int, recovered bool) {
	if s.window > 0 {
		return s.drainWindowed(apply)
	}
	for {
		b, gapped, ok := s.pop()
		if !ok {
			// Tail-gap check: a batch dropped on fanout-ring overflow
			// leaves no later batch behind it to expose the sequence
			// gap, so compare loss epochs once the queue is empty.
			if lost := s.feed.lostBatches.Load(); lost != s.seenLost {
				s.seenLost = lost
				if r := s.feed.recover(s, apply); r > 0 {
					n += r
					recovered = true
				}
				continue
			}
			return n, recovered
		}
		if gapped {
			n += s.feed.recover(s, apply)
			recovered = true
			continue
		}
		if b.Last <= s.lastSeq {
			// Stale: superseded by an earlier recovery.
			b.release()
			continue
		}
		if b.First != s.lastSeq+1 {
			// Lost batch (fanout overflow) or late join: recover.
			b.release()
			n += s.feed.recover(s, apply)
			recovered = true
			continue
		}
		for i := range b.Deltas {
			apply(b.Deltas[i])
		}
		n += len(b.Deltas)
		s.lastSeq = b.Last
		s.delivered.Add(uint64(len(b.Deltas)))
		b.release()
	}
}

// drainWindowed is the time-windowed conflation path: at most one
// release per ConflateWindow, each release a single catch-up to the
// feed's current state. An empty poll does not burn the window — the
// cadence bound is between *releases*, so a quiet feed adds no
// latency once data arrives.
func (s *Subscription) drainWindowed(apply func(Delta)) (int, bool) {
	now := s.feed.opts.Now()
	if now.Before(s.nextDue) {
		return 0, false
	}
	n := s.feed.recover(s, apply)
	if n == 0 {
		return 0, false
	}
	s.nextDue = now.Add(s.window)
	return n, true
}

// Delivered reports deltas applied in sequence (excluding recovery).
func (s *Subscription) Delivered() uint64 { return s.delivered.Load() }

// Recovered reports deltas applied through recovery paths.
func (s *Subscription) Recovered() uint64 { return s.recovered.Load() }

// LastSeq reports the consumer's applied high-water mark. Consumer
// thread only.
func (s *Subscription) LastSeq() uint64 { return s.lastSeq }

// recover brings a gapped subscriber to the feed's current state:
// journal replay when the gap fits, otherwise Reset + latest-state
// snapshot. Runs under the feed's read lock, so the recovered state
// is a consistent batch-boundary cut.
func (f *Feed) recover(s *Subscription, apply func(Delta)) int {
	f.mu.RLock()
	defer f.mu.RUnlock()
	cur := f.seq
	if cur <= s.lastSeq {
		return 0
	}
	n := 0
	if cur-s.lastSeq <= uint64(len(f.journal)) {
		for q := s.lastSeq + 1; q <= cur; q++ {
			apply(f.journal[(q-1)%uint64(len(f.journal))])
			n++
		}
	} else {
		apply(Delta{Seq: cur, Kind: Reset})
		n++
		n += f.snapshotLocked(cur, apply)
	}
	s.lastSeq = cur
	s.recovered.Add(uint64(n))
	return n
}

// SnapshotInto streams the feed's latest-state-per-level snapshot —
// a Reset marker then one Add per populated level, all stamped with
// the snapshot sequence — and returns that sequence. Late joiners
// that want an explicit snapshot-then-deltas handshake call this;
// Drain afterwards replays (or recovers past) everything newer.
func (f *Feed) SnapshotInto(apply func(Delta)) uint64 {
	f.mu.RLock()
	defer f.mu.RUnlock()
	cur := f.seq
	apply(Delta{Seq: cur, Kind: Reset})
	f.snapshotLocked(cur, apply)
	return cur
}

// snapshotLocked emits one Add per mirrored level in deterministic
// (side, then price) order. Caller holds f.mu.
func (f *Feed) snapshotLocked(seq uint64, apply func(Delta)) int {
	keys := make([]levelKey, 0, len(f.mirror))
	for k := range f.mirror {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].Side != keys[j].Side {
			return keys[i].Side < keys[j].Side
		}
		return keys[i].Price < keys[j].Price
	})
	for _, k := range keys {
		v := f.mirror[k]
		apply(Delta{Seq: seq, Kind: Add, Side: k.Side, Price: k.Price, Qty: v.Qty, Orders: v.Orders})
	}
	return len(keys)
}
