package mdfeed

import (
	"sync"
	"time"

	"repro/internal/labels"
)

// HubConfig configures a Hub; per-feed knobs carry over to every feed
// it creates.
type HubConfig struct {
	// Label, CheckLabels, Journal, FanoutRing, BatchMax, DefaultQueue
	// and SyncFanout are applied to each feed; see Options.
	Label        labels.Label
	CheckLabels  bool
	Journal      int
	FanoutRing   int
	BatchMax     int
	DefaultQueue int
	SyncFanout   bool
	// NS maps a symbol to its per-symbol namespace (the trading
	// platform's trade-ID namespace). Nil numbers feeds in creation
	// order.
	NS func(symbol string) int64
}

// Hub owns one feed per symbol, created on demand — the trading
// platform holds one Hub and each broker shard draws the feeds for
// the symbols it owns.
type Hub struct {
	cfg HubConfig

	mu    sync.RWMutex
	feeds map[string]*Feed
	next  int64
}

// NewHub builds a hub.
func NewHub(cfg HubConfig) *Hub {
	return &Hub{cfg: cfg, feeds: make(map[string]*Feed)}
}

// Feed returns the symbol's feed, creating it on first use.
func (h *Hub) Feed(symbol string) *Feed {
	h.mu.RLock()
	f := h.feeds[symbol]
	h.mu.RUnlock()
	if f != nil {
		return f
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if f = h.feeds[symbol]; f != nil {
		return f
	}
	ns := h.next
	h.next++
	if h.cfg.NS != nil {
		ns = h.cfg.NS(symbol)
	}
	f = NewFeed(symbol, ns, Options{
		Label:        h.cfg.Label,
		CheckLabels:  h.cfg.CheckLabels,
		Journal:      h.cfg.Journal,
		FanoutRing:   h.cfg.FanoutRing,
		BatchMax:     h.cfg.BatchMax,
		DefaultQueue: h.cfg.DefaultQueue,
		SyncFanout:   h.cfg.SyncFanout,
	})
	h.feeds[symbol] = f
	return f
}

// Lookup returns the symbol's feed without creating it.
func (h *Hub) Lookup(symbol string) *Feed {
	h.mu.RLock()
	defer h.mu.RUnlock()
	return h.feeds[symbol]
}

// Symbols reports live feed count.
func (h *Hub) Symbols() int {
	h.mu.RLock()
	defer h.mu.RUnlock()
	return len(h.feeds)
}

// Each visits every live feed.
func (h *Hub) Each(fn func(*Feed)) {
	h.mu.RLock()
	feeds := make([]*Feed, 0, len(h.feeds))
	for _, f := range h.feeds {
		feeds = append(feeds, f)
	}
	h.mu.RUnlock()
	for _, f := range feeds {
		fn(f)
	}
}

// Quiesce waits for every feed's fanout to drain.
func (h *Hub) Quiesce(timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	ok := true
	h.Each(func(f *Feed) {
		left := time.Until(deadline)
		if left < 0 {
			left = 0
		}
		if !f.Quiesce(left) {
			ok = false
		}
	})
	return ok
}

// Close stops every feed's fanout. Ingest must have stopped first
// (the trading platform closes its dispatch system, then the hub).
func (h *Hub) Close() {
	h.Each(func(f *Feed) { f.Close() })
}

// Stats aggregates counters across feeds.
type Stats struct {
	Feeds       int
	Batches     uint64
	Deltas      uint64
	LabelChecks uint64
	LabelDenied uint64
	Conflations uint64
	LostBatches uint64
}

// Stats sums per-feed counters.
func (h *Hub) Stats() Stats {
	var s Stats
	h.Each(func(f *Feed) {
		s.Feeds++
		s.Batches += f.Batches()
		s.Deltas += f.Deltas()
		s.LabelChecks += f.LabelChecks()
		s.LabelDenied += f.LabelDenied()
		s.Conflations += f.Conflations()
		s.LostBatches += f.LostBatches()
	})
	return s
}
