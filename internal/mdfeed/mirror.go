package mdfeed

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/orderbook"
)

// L2Mirror is a consumer-side book image maintained purely from
// deltas — the state a subscriber reconstructs. It doubles as the
// test oracle: a mirror fed any recovery path must land bit-identical
// to one fed the live stream.
type L2Mirror struct {
	levels map[levelKey]levelVal
	seq    uint64
}

// NewMirror returns an empty mirror.
func NewMirror() *L2Mirror {
	return &L2Mirror{levels: make(map[levelKey]levelVal)}
}

// Apply folds one delta into the mirror. Reset discards all state
// (the snapshot that follows rebuilds it).
func (m *L2Mirror) Apply(d Delta) {
	switch d.Kind {
	case Reset:
		for k := range m.levels {
			delete(m.levels, k)
		}
	case Delete:
		delete(m.levels, levelKey{d.Side, d.Price})
	default:
		m.levels[levelKey{d.Side, d.Price}] = levelVal{Qty: d.Qty, Orders: d.Orders}
	}
	m.seq = d.Seq
}

// Seq reports the last applied sequence number.
func (m *L2Mirror) Seq() uint64 { return m.seq }

// Len reports populated levels.
func (m *L2Mirror) Len() int { return len(m.levels) }

// Level is one materialized price level.
type Level struct {
	Side   orderbook.Side
	Price  int64
	Qty    int64
	Orders int32
}

// Levels returns the mirrored book in deterministic (side, price)
// order.
func (m *L2Mirror) Levels() []Level {
	out := make([]Level, 0, len(m.levels))
	for k, v := range m.levels {
		out = append(out, Level{Side: k.Side, Price: k.Price, Qty: v.Qty, Orders: v.Orders})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Side != out[j].Side {
			return out[i].Side < out[j].Side
		}
		return out[i].Price < out[j].Price
	})
	return out
}

// Equal reports whether two mirrors hold identical level state
// (sequence numbers excluded: recovery legitimately skips them).
func (m *L2Mirror) Equal(o *L2Mirror) bool {
	if len(m.levels) != len(o.levels) {
		return false
	}
	for k, v := range m.levels {
		if o.levels[k] != v {
			return false
		}
	}
	return true
}

// String renders the mirror for test failure messages.
func (m *L2Mirror) String() string {
	var sb strings.Builder
	for _, lv := range m.Levels() {
		fmt.Fprintf(&sb, "%v %d: qty=%d orders=%d\n", lv.Side, lv.Price, lv.Qty, lv.Orders)
	}
	return sb.String()
}

// BookState captures a live book's level state through the zero-alloc
// visitor — the ground truth every subscriber mirror must converge
// to.
func BookState(b *orderbook.Book) *L2Mirror {
	m := NewMirror()
	for _, side := range [2]orderbook.Side{orderbook.Bid, orderbook.Ask} {
		s := side
		b.VisitDepth(s, func(price, qty int64, orders int) bool {
			m.levels[levelKey{s, price}] = levelVal{Qty: qty, Orders: int32(orders)}
			return true
		})
	}
	return m
}

// FromLevelSnaps aggregates a copying orderbook snapshot (e.g. the
// broker's SnapshotBooks output) into mirror form, for comparing a
// subscriber's view against the matching layer's.
func FromLevelSnaps(snaps []orderbook.LevelSnap) *L2Mirror {
	m := NewMirror()
	for _, ls := range snaps {
		var qty int64
		for _, o := range ls.Orders {
			qty += o.Qty
		}
		m.levels[levelKey{ls.Side, ls.Price}] = levelVal{Qty: qty, Orders: int32(len(ls.Orders))}
	}
	return m
}
