package mdfeed

// Fanout micro-benchmarks. The headline numbers:
//
//	ns/delta-delivery vs subscriber count — should grow linearly with
//	a tiny constant (one refcount add + one ring write per sub), and
//	allocs/op must be 0 in steady state at every population.
//
// Run with:
//
//	go test ./internal/mdfeed -run xxx -bench . -benchmem

import (
	"fmt"
	"testing"

	"repro/internal/labels"
	"repro/internal/orderbook"
	"repro/internal/tags"
)

func benchFeed(nSubs int, checkLabels bool) (*Feed, []*Subscription) {
	store := tags.NewStore(1)
	lb := labels.New(labels.NewSet(store.Create("mdfeed", "boot")), labels.NewSet())
	f := NewFeed("B", 1, Options{SyncFanout: true, Label: lb, CheckLabels: checkLabels})
	subs := make([]*Subscription, nSubs)
	for i := range subs {
		subs[i] = f.Subscribe(SubOptions{Label: lb, Queue: 16})
	}
	return f, subs
}

// BenchmarkMDFanout: one level change sealed, fanned out to N
// subscribers and drained — the full steady-state pipeline.
func BenchmarkMDFanout(b *testing.B) {
	for _, n := range []int{1, 100, 10000} {
		b.Run(fmt.Sprintf("subs=%d", n), func(b *testing.B) {
			f, subs := benchFeed(n, true)
			sink := func(Delta) {}
			qty := int64(0)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				qty++
				f.IngestLevel(orderbook.Bid, 100, 5+qty%2, 1)
				f.Flush()
				for _, s := range subs {
					s.Drain(sink)
				}
			}
			if f.LabelChecks() == 0 {
				b.Fatal("labels never checked")
			}
		})
	}
}

// BenchmarkMDLabelAmortization pins the claim behind the 10k-sub
// figure: with 10,000 subscribers in one class, label-check work per
// sealed batch stays exactly one check.
func BenchmarkMDLabelAmortization(b *testing.B) {
	f, subs := benchFeed(10000, true)
	sink := func(Delta) {}
	qty := int64(0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		qty++
		f.IngestLevel(orderbook.Bid, 100, 5+qty%2, 1)
		f.Flush()
	}
	b.StopTimer()
	for _, s := range subs {
		s.Drain(sink)
	}
	if got, want := f.LabelChecks(), f.Batches(); got != want {
		b.Fatalf("checks %d != batches %d for one class of 10k subs", got, want)
	}
}
