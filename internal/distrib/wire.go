// Package distrib implements multi-node DEFCon — the paper's stated
// future work (§7: "we plan to investigate issues in a distributed
// system built from a set of DEFCON nodes").
//
// A Node wraps a DEFCon system with an inter-node link endpoint.
// Links forward selected events between nodes with their labels,
// privilege grants and tag identities intact: tags are globally unique
// random bit-strings, so a tag's identity survives serialisation and
// denotes the same concern everywhere.
//
// Trust model: nodes are mutually trusting DEFCon runtimes — the same
// assumption the paper makes for one node's dispatcher and JVM,
// extended across machines (e.g. the co-location provider's own
// cluster). The link endpoints are part of that trusted runtime; units
// remain untrusted and keep interacting only through Table 1.
package distrib

import (
	"fmt"

	"repro/internal/events"
	"repro/internal/freeze"
	"repro/internal/labels"
	"repro/internal/priv"
	"repro/internal/tags"
)

// wireValue is the gob-friendly encoding of a part datum.
type wireValue struct {
	Kind  uint8 // one of the vk* constants
	Bool  bool
	Int   int64
	Float float64
	Str   string
	Tag   tags.ID
	Bytes []byte
	List  []wireValue
	Map   map[string]wireValue
}

const (
	vkNil = iota
	vkBool
	vkInt
	vkFloat
	vkString
	vkTag
	vkBytes
	vkList
	vkMap
)

// wireGrant is a serialised privilege grant.
type wireGrant struct {
	Tag   tags.ID
	Right uint8
}

// wireLabel is a serialised security label.
type wireLabel struct {
	S, I []tags.ID
}

// wirePart is a serialised event part.
type wirePart struct {
	Name   string
	Label  wireLabel
	Data   wireValue
	Grants []wireGrant
}

// wireEvent is a serialised event.
type wireEvent struct {
	Origin string
	Hops   uint8
	Stamp  int64
	Parts  []wirePart
}

// wireFrame is the unit of inter-node transfer (protocol v2): a run of
// events shipped as one gob message. The send loop drains everything
// already queued on its tap into one frame, and the import loop
// materialises a whole frame through the batched publish path — one
// encoder/decoder round and one queue handoff per frame instead of
// per event.
type wireFrame struct {
	Events []wireEvent
}

// encodeValue converts a part datum for the wire.
func encodeValue(v freeze.Value) (wireValue, error) {
	switch x := v.(type) {
	case nil:
		return wireValue{Kind: vkNil}, nil
	case bool:
		return wireValue{Kind: vkBool, Bool: x}, nil
	case int:
		return wireValue{Kind: vkInt, Int: int64(x)}, nil
	case int8:
		return wireValue{Kind: vkInt, Int: int64(x)}, nil
	case int16:
		return wireValue{Kind: vkInt, Int: int64(x)}, nil
	case int32:
		return wireValue{Kind: vkInt, Int: int64(x)}, nil
	case int64:
		return wireValue{Kind: vkInt, Int: x}, nil
	case uint:
		return wireValue{Kind: vkInt, Int: int64(x)}, nil
	case uint8:
		return wireValue{Kind: vkInt, Int: int64(x)}, nil
	case uint16:
		return wireValue{Kind: vkInt, Int: int64(x)}, nil
	case uint32:
		return wireValue{Kind: vkInt, Int: int64(x)}, nil
	case uint64:
		return wireValue{Kind: vkInt, Int: int64(x)}, nil
	case float32:
		return wireValue{Kind: vkFloat, Float: float64(x)}, nil
	case float64:
		return wireValue{Kind: vkFloat, Float: x}, nil
	case string:
		return wireValue{Kind: vkString, Str: x}, nil
	case tags.Tag:
		return wireValue{Kind: vkTag, Tag: x.ID()}, nil
	case *freeze.Bytes:
		return wireValue{Kind: vkBytes, Bytes: x.Snapshot()}, nil
	case *freeze.List:
		out := wireValue{Kind: vkList}
		var encErr error
		x.Each(func(i int, v freeze.Value) bool {
			wv, err := encodeValue(v)
			if err != nil {
				encErr = err
				return false
			}
			out.List = append(out.List, wv)
			return true
		})
		return out, encErr
	case *freeze.Map:
		out := wireValue{Kind: vkMap, Map: make(map[string]wireValue, x.Len())}
		var encErr error
		x.Each(func(k string, v freeze.Value) bool {
			wv, err := encodeValue(v)
			if err != nil {
				encErr = err
				return false
			}
			out.Map[k] = wv
			return true
		})
		return out, encErr
	default:
		return wireValue{}, fmt.Errorf("distrib: unencodable part value %T", v)
	}
}

// decodeValue reconstructs a part datum. Containers come back as fresh
// freezables; publish on the importing node freezes them again.
func decodeValue(w wireValue) (freeze.Value, error) {
	switch w.Kind {
	case vkNil:
		return nil, nil
	case vkBool:
		return w.Bool, nil
	case vkInt:
		return w.Int, nil
	case vkFloat:
		return w.Float, nil
	case vkString:
		return w.Str, nil
	case vkTag:
		return tags.FromID(w.Tag), nil
	case vkBytes:
		return freeze.NewBytes(w.Bytes), nil
	case vkList:
		l := &freeze.List{}
		for _, item := range w.List {
			v, err := decodeValue(item)
			if err != nil {
				return nil, err
			}
			if err := l.Append(v); err != nil {
				return nil, err
			}
		}
		return l, nil
	case vkMap:
		m := freeze.NewMap()
		for k, item := range w.Map {
			v, err := decodeValue(item)
			if err != nil {
				return nil, err
			}
			if err := m.Put(k, v); err != nil {
				return nil, err
			}
		}
		return m, nil
	default:
		return nil, fmt.Errorf("distrib: unknown wire value kind %d", w.Kind)
	}
}

// encodeLabel flattens a label to tag IDs.
func encodeLabel(l labels.Label) wireLabel {
	var w wireLabel
	for _, t := range l.S.Slice() {
		w.S = append(w.S, t.ID())
	}
	for _, t := range l.I.Slice() {
		w.I = append(w.I, t.ID())
	}
	return w
}

// decodeLabel reconstructs a label, registering foreign tags with the
// local store for diagnostics.
func decodeLabel(w wireLabel, store *tags.Store, origin string) labels.Label {
	s := make([]tags.Tag, 0, len(w.S))
	for _, id := range w.S {
		t := tags.FromID(id)
		store.RegisterForeign(t, "imported", origin)
		s = append(s, t)
	}
	i := make([]tags.Tag, 0, len(w.I))
	for _, id := range w.I {
		t := tags.FromID(id)
		store.RegisterForeign(t, "imported", origin)
		i = append(i, t)
	}
	return labels.NewFromTags(s, i)
}

// EncodeEvent serialises an event for the wire (trusted runtime path:
// all parts are read regardless of label).
func EncodeEvent(e *events.Event, origin string) (wireEvent, error) {
	we := wireEvent{Origin: origin, Stamp: e.Stamp}
	for _, p := range e.Parts() {
		wv, err := encodeValue(p.Data)
		if err != nil {
			return we, fmt.Errorf("part %q: %w", p.Name, err)
		}
		wp := wirePart{Name: p.Name, Label: encodeLabel(p.Label), Data: wv}
		for _, g := range p.Grants {
			wp.Grants = append(wp.Grants, wireGrant{Tag: g.Tag.ID(), Right: uint8(g.Right)})
		}
		we.Parts = append(we.Parts, wp)
	}
	return we, nil
}

// DecodeEvent materialises a wire event as a local event with the
// given identity. Labels, grants and tag identities are preserved.
func DecodeEvent(we wireEvent, id uint64, store *tags.Store) (*events.Event, error) {
	e := events.New(id)
	e.Stamp = we.Stamp
	e.Origin = we.Origin
	e.Hops = we.Hops
	for _, wp := range we.Parts {
		data, err := decodeValue(wp.Data)
		if err != nil {
			return nil, fmt.Errorf("part %q: %w", wp.Name, err)
		}
		part, err := e.AddPart(wp.Name, decodeLabel(wp.Label, store, we.Origin), data, "link:"+we.Origin)
		if err != nil {
			return nil, fmt.Errorf("part %q: %w", wp.Name, err)
		}
		for _, wg := range wp.Grants {
			t := tags.FromID(wg.Tag)
			store.RegisterForeign(t, "imported", we.Origin)
			part.Grants = append(part.Grants, priv.Grant{Tag: t, Right: priv.Right(wg.Right)})
		}
	}
	return e, nil
}
