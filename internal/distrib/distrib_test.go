package distrib

import (
	"errors"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/dispatch"
	"repro/internal/events"
	"repro/internal/freeze"
	"repro/internal/labels"
	"repro/internal/priv"
)

func newNode(t *testing.T, name string, seed int64) *Node {
	t.Helper()
	sys := core.NewSystem(core.Config{Mode: core.LabelsFreeze, Seed: seed})
	t.Cleanup(sys.Close)
	return NewNode(sys, name)
}

// waitFor polls cond until true or timeout.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timeout waiting for %s", what)
}

func TestWireRoundTripPreservesEverything(t *testing.T) {
	sysA := core.NewSystem(core.Config{Mode: core.LabelsFreeze, Seed: 1})
	defer sysA.Close()
	u := sysA.NewUnit("u", core.UnitConfig{})
	secret := u.CreateTag("secret")
	integ := u.CreateTag("integ")
	if err := u.ChangeOutLabel(core.Integrity, core.Add, integ); err != nil {
		t.Fatal(err)
	}

	e := u.CreateEvent()
	payload := freeze.MapOf(
		"s", "text", "i", int64(-7), "f", 2.5, "b", true,
		"tag", secret,
		"list", freeze.MustList(int64(1), "two"),
		"bytes", freeze.NewBytes([]byte{1, 2, 3}),
	)
	if err := u.AddPart(e, labels.NewSet(secret), labels.EmptySet, "body", payload); err != nil {
		t.Fatal(err)
	}
	if err := u.AttachPrivilegeToPart(e, "body", labels.NewSet(secret), labels.EmptySet, secret, priv.Plus); err != nil {
		t.Fatal(err)
	}
	if err := u.Publish(e); err != nil { // freezes parts
		t.Fatal(err)
	}
	e.Stamp = 12345

	we, err := EncodeEvent(e, "node-a")
	if err != nil {
		t.Fatal(err)
	}
	sysB := core.NewSystem(core.Config{Mode: core.LabelsFreeze, Seed: 2})
	defer sysB.Close()
	back, err := DecodeEvent(we, 99, sysB.TagStore())
	if err != nil {
		t.Fatal(err)
	}
	if back.ID() != 99 || back.Stamp != 12345 || back.Origin != "node-a" {
		t.Fatalf("event meta wrong: %d %d %q", back.ID(), back.Stamp, back.Origin)
	}
	parts := back.Parts()
	if len(parts) != 1 {
		t.Fatalf("parts = %d", len(parts))
	}
	p := parts[0]
	if !p.Label.S.Has(secret) {
		t.Fatal("label lost in transit")
	}
	if len(p.Grants) != 1 || p.Grants[0].Tag != secret || p.Grants[0].Right != priv.Plus {
		t.Fatalf("grants lost: %+v", p.Grants)
	}
	m := p.Data.(*freeze.Map)
	if m.GetString("s") != "text" || m.GetInt("i") != -7 || m.GetFloat("f") != 2.5 {
		t.Fatal("scalars corrupted")
	}
	if tagv, _ := m.Get("tag"); tagv != freeze.Value(secret) {
		t.Fatal("tag identity lost")
	}
	lst, _ := m.Get("list")
	if lst.(*freeze.List).Len() != 2 {
		t.Fatal("list corrupted")
	}
	bs, _ := m.Get("bytes")
	if string(bs.(*freeze.Bytes).Snapshot()) != "\x01\x02\x03" {
		t.Fatal("bytes corrupted")
	}
	// Foreign tag registered for diagnostics.
	if _, err := sysB.TagStore().Lookup(secret); err != nil {
		t.Fatal("foreign tag not registered")
	}
}

func TestEncodeRejectsUnknownValue(t *testing.T) {
	if _, err := encodeValue(struct{}{}); err == nil {
		t.Fatal("struct encoded")
	}
	if _, err := decodeValue(wireValue{Kind: 99}); err == nil {
		t.Fatal("unknown kind decoded")
	}
}

func TestLinkForwardsMatchingEvents(t *testing.T) {
	a := newNode(t, "a", 1)
	b := newNode(t, "b", 2)
	la, lb, err := ConnectPipe(a, b,
		dispatch.MustFilter(dispatch.PartEq("type", "export")),
		dispatch.MustFilter(dispatch.PartEq("type", "export")))
	if err != nil {
		t.Fatal(err)
	}
	_ = lb

	recv := b.Sys.NewUnit("recv", core.UnitConfig{})
	if _, err := recv.Subscribe(dispatch.MustFilter(dispatch.PartEq("type", "export"))); err != nil {
		t.Fatal(err)
	}

	pub := a.Sys.NewUnit("pub", core.UnitConfig{})
	e := pub.CreateEvent()
	if err := pub.AddPart(e, labels.EmptySet, labels.EmptySet, "type", "export"); err != nil {
		t.Fatal(err)
	}
	if err := pub.AddPart(e, labels.EmptySet, labels.EmptySet, "body", "hello"); err != nil {
		t.Fatal(err)
	}
	if err := pub.Publish(e); err != nil {
		t.Fatal(err)
	}

	got, _, err := recv.GetEvent()
	if err != nil {
		t.Fatal(err)
	}
	if v, err := recv.ReadOne(got, "body"); err != nil || v.Data != freeze.Value("hello") {
		t.Fatalf("imported body = %v, %v", v, err)
	}
	waitFor(t, "export counter", func() bool { return la.Exported() == 1 })
}

func TestLinkDoesNotForwardNonMatching(t *testing.T) {
	a := newNode(t, "a", 1)
	b := newNode(t, "b", 2)
	la, _, err := ConnectPipe(a, b,
		dispatch.MustFilter(dispatch.PartEq("type", "export")),
		dispatch.MustFilter(dispatch.PartEq("type", "export")))
	if err != nil {
		t.Fatal(err)
	}
	pub := a.Sys.NewUnit("pub", core.UnitConfig{})
	e := pub.CreateEvent()
	if err := pub.AddPart(e, labels.EmptySet, labels.EmptySet, "type", "local-only"); err != nil {
		t.Fatal(err)
	}
	if err := pub.Publish(e); err != nil {
		t.Fatal(err)
	}
	time.Sleep(30 * time.Millisecond)
	if la.Exported() != 0 {
		t.Fatal("non-matching event exported")
	}
}

func TestConfidentialityHoldsAcrossNodes(t *testing.T) {
	a := newNode(t, "a", 1)
	b := newNode(t, "b", 2)
	if _, _, err := ConnectPipe(a, b,
		dispatch.MustFilter(dispatch.PartExists("order")),
		dispatch.MustFilter(dispatch.PartExists("order"))); err != nil {
		t.Fatal(err)
	}

	// Node-b units: eve (no privileges) and auditor (will receive the
	// carried grant).
	eve := b.Sys.NewUnit("eve", core.UnitConfig{})
	if _, err := eve.Subscribe(dispatch.MustFilter(dispatch.PartExists("order"))); err != nil {
		t.Fatal(err)
	}
	auditor := b.Sys.NewUnit("auditor", core.UnitConfig{})
	if _, err := auditor.Subscribe(dispatch.MustFilter(dispatch.PartExists("notice"))); err != nil {
		t.Fatal(err)
	}

	trader := a.Sys.NewUnit("trader", core.UnitConfig{})
	secret := trader.CreateTag("s-trader")
	e := trader.CreateEvent()
	// A public notice part (carrying the grant) and a protected order.
	if err := trader.AddPart(e, labels.EmptySet, labels.EmptySet, "notice", secret); err != nil {
		t.Fatal(err)
	}
	for _, r := range []priv.Right{priv.Plus, priv.Minus} {
		if err := trader.AttachPrivilegeToPart(e, "notice", labels.EmptySet, labels.EmptySet, secret, r); err != nil {
			t.Fatal(err)
		}
	}
	if err := trader.AddPart(e, labels.NewSet(secret), labels.EmptySet, "order", "buy 100 MSFT"); err != nil {
		t.Fatal(err)
	}
	if err := trader.Publish(e); err != nil {
		t.Fatal(err)
	}

	// Eve's subscription names the protected part: the label admission
	// on node b must block her even though the event crossed the wire.
	time.Sleep(50 * time.Millisecond)
	if eve.QueueLen() != 0 {
		t.Fatal("protected event delivered to unprivileged unit on remote node")
	}

	// The auditor matches on the public part, harvests the grant and
	// reads the order.
	got, _, err := auditor.GetEvent()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := auditor.ReadPart(got, "notice"); err != nil {
		t.Fatal(err)
	}
	if err := auditor.ChangeInLabel(core.Confidentiality, core.Add, secret); err != nil {
		t.Fatalf("delegated privilege did not survive the hop: %v", err)
	}
	if v, err := auditor.ReadOne(got, "order"); err != nil || v.Data != freeze.Value("buy 100 MSFT") {
		t.Fatalf("order read failed: %v %v", v, err)
	}
}

func TestBidirectionalLinkDoesNotLoop(t *testing.T) {
	a := newNode(t, "a", 1)
	b := newNode(t, "b", 2)
	f := dispatch.MustFilter(dispatch.PartEq("type", "x"))
	la, lb, err := ConnectPipe(a, b, f, f)
	if err != nil {
		t.Fatal(err)
	}
	pub := a.Sys.NewUnit("pub", core.UnitConfig{})
	e := pub.CreateEvent()
	if err := pub.AddPart(e, labels.EmptySet, labels.EmptySet, "type", "x"); err != nil {
		t.Fatal(err)
	}
	if err := pub.Publish(e); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "import on b", func() bool { return lb.Imported() == 1 })
	time.Sleep(50 * time.Millisecond)
	// b's tap sees the imported event, but must not bounce it back to a.
	if lb.Exported() != 0 {
		t.Fatalf("event bounced back: exported=%d", lb.Exported())
	}
	if la.Imported() != 0 {
		t.Fatal("origin node re-imported its own event")
	}
}

func TestThreeNodeChainForwarding(t *testing.T) {
	a := newNode(t, "a", 1)
	b := newNode(t, "b", 2)
	c := newNode(t, "c", 3)
	f := dispatch.MustFilter(dispatch.PartEq("type", "x"))
	if _, _, err := ConnectPipe(a, b, f, f); err != nil {
		t.Fatal(err)
	}
	if _, _, err := ConnectPipe(b, c, f, f); err != nil {
		t.Fatal(err)
	}
	recv := c.Sys.NewUnit("recv", core.UnitConfig{})
	if _, err := recv.Subscribe(f); err != nil {
		t.Fatal(err)
	}
	pub := a.Sys.NewUnit("pub", core.UnitConfig{})
	e := pub.CreateEvent()
	if err := pub.AddPart(e, labels.EmptySet, labels.EmptySet, "type", "x"); err != nil {
		t.Fatal(err)
	}
	if err := pub.Publish(e); err != nil {
		t.Fatal(err)
	}
	got, _, err := recv.GetEvent()
	if err != nil {
		t.Fatal(err)
	}
	if got.Hops != 2 {
		t.Fatalf("hops = %d, want 2", got.Hops)
	}
	if got.Origin != "b" {
		t.Fatalf("origin = %q, want last hop b", got.Origin)
	}
}

func TestHopLimitStopsPropagation(t *testing.T) {
	a := newNode(t, "a", 1)
	b := newNode(t, "b", 2)
	a.MaxHops = 1
	b.MaxHops = 1
	c := newNode(t, "c", 3)
	c.MaxHops = 1
	f := dispatch.MustFilter(dispatch.PartEq("type", "x"))
	if _, _, err := ConnectPipe(a, b, f, f); err != nil {
		t.Fatal(err)
	}
	lbc, _, err := ConnectPipe(b, c, f, f)
	if err != nil {
		t.Fatal(err)
	}
	pub := a.Sys.NewUnit("pub", core.UnitConfig{})
	e := pub.CreateEvent()
	if err := pub.AddPart(e, labels.EmptySet, labels.EmptySet, "type", "x"); err != nil {
		t.Fatal(err)
	}
	if err := pub.Publish(e); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "drop on b->c", func() bool { return lbc.Dropped() >= 1 })
	if lbc.Exported() != 0 {
		t.Fatal("hop limit ignored")
	}
}

func TestTCPLink(t *testing.T) {
	a := newNode(t, "a", 1)
	b := newNode(t, "b", 2)
	f := dispatch.MustFilter(dispatch.PartEq("type", "x"))
	addr, stop, err := a.Listen("127.0.0.1:0", f)
	if err != nil {
		t.Fatal(err)
	}
	defer stop()
	if _, err := b.Dial(addr, f); err != nil {
		t.Fatal(err)
	}
	recv := b.Sys.NewUnit("recv", core.UnitConfig{})
	if _, err := recv.Subscribe(f); err != nil {
		t.Fatal(err)
	}
	pub := a.Sys.NewUnit("pub", core.UnitConfig{})
	e := pub.CreateEvent()
	if err := pub.AddPart(e, labels.EmptySet, labels.EmptySet, "type", "x"); err != nil {
		t.Fatal(err)
	}
	if err := pub.Publish(e); err != nil {
		t.Fatal(err)
	}
	if _, _, err := recv.GetEvent(); err != nil {
		t.Fatal(err)
	}
}

func TestInjectValidation(t *testing.T) {
	sys := core.NewSystem(core.Config{Mode: core.LabelsFreeze})
	if err := sys.Inject(nil); err == nil {
		t.Fatal("nil inject accepted")
	}
	sys.Close()
	if err := sys.Inject(events.New(1)); !errors.Is(err, core.ErrClosed) {
		t.Fatalf("inject after close = %v", err)
	}
}

// TestBatchImportPreservesPublishOrder pins the frame path's ordering
// contract: a run of events exported from one node must materialise on
// the peer — through the frame decode buffer and the batched
// InjectBatch publish — as the same events in the same order the
// origin published them.
func TestBatchImportPreservesPublishOrder(t *testing.T) {
	a := newNode(t, "a", 1)
	b := newNode(t, "b", 2)
	if _, _, err := ConnectPipe(a, b,
		dispatch.MustFilter(dispatch.PartExists("n")), // a exports
		dispatch.MustFilter(dispatch.PartEq("none", "never")),
	); err != nil {
		t.Fatal(err)
	}

	// Synchronous subscriber on b recording arrival order.
	probe := b.Sys.NewUnit("probe", core.UnitConfig{QueueCap: 1024})
	if _, err := probe.Subscribe(dispatch.MustFilter(dispatch.PartExists("n"))); err != nil {
		t.Fatal(err)
	}
	order := make(chan int64, 512)
	b.Sys.Go(func() {
		for {
			e, _, err := probe.GetEvent()
			if err != nil {
				return
			}
			if v, err := probe.ReadOne(e, "n"); err == nil {
				if n, ok := v.Data.(int64); ok {
					order <- n
				}
			}
		}
	})

	const total = 300
	pub := a.Sys.NewUnit("pub", core.UnitConfig{})
	for i := 0; i < total; i++ {
		e := pub.CreateEvent()
		if err := pub.AddPart(e, labels.EmptySet, labels.EmptySet, "n", int64(i)); err != nil {
			t.Fatal(err)
		}
		if err := pub.Publish(e); err != nil {
			t.Fatal(err)
		}
	}

	for want := int64(0); want < total; want++ {
		select {
		case got := <-order:
			if got != want {
				t.Fatalf("import order diverges: got %d want %d", got, want)
			}
		case <-time.After(10 * time.Second):
			t.Fatalf("timed out at event %d of %d", want, total)
		}
	}
}
