package distrib

import (
	"encoding/gob"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/dispatch"
	"repro/internal/events"
)

// DefaultMaxHops bounds multi-hop forwarding: an event stops
// propagating after this many node-to-node hops, so cyclic topologies
// cannot amplify traffic indefinitely.
const DefaultMaxHops = 8

// Node is one DEFCon instance participating in a distributed
// deployment.
type Node struct {
	Sys  *core.System
	Name string
	// MaxHops overrides DefaultMaxHops when positive.
	MaxHops int

	mu    sync.Mutex
	links []*Link
}

// NewNode wraps a system as a distributed node.
func NewNode(sys *core.System, name string) *Node {
	return &Node{Sys: sys, Name: name}
}

// nodeHello is the link handshake.
type nodeHello struct {
	Name  string
	Proto int
}

// protoVersion 2 ships events in wireFrame batches; v1 peers (one
// wireEvent per gob message) are rejected at the handshake.
const protoVersion = 2

// maxLinkBatch bounds how many events one frame carries. It caps both
// the send loop's greedy drain (so one frame cannot grow without
// bound under backlog) and the import loop's decode buffer.
const maxLinkBatch = 64

// Link is one live connection to a peer node: events matching the
// export filter flow out (labels intact), events arriving flow into
// the local dispatcher via the trusted Inject path.
type Link struct {
	node   *Node
	remote string
	conn   io.ReadWriteCloser
	enc    *gob.Encoder
	dec    *gob.Decoder
	tap    *core.Tap

	sendMu  sync.Mutex
	closed  atomic.Bool
	closedc chan struct{} // closed exactly once by Close

	exported atomic.Uint64
	imported atomic.Uint64
	dropped  atomic.Uint64 // loop-prevention and hop-limit drops
}

// Link attaches a connection as an inter-node link. export selects
// which local events are offered to the peer (matching by name and
// data; labels travel with the events rather than gating them — the
// peer's own dispatcher enforces admission for its units).
func (n *Node) Link(conn io.ReadWriteCloser, export *dispatch.Filter) (*Link, error) {
	l := &Link{
		node:    n,
		conn:    conn,
		enc:     gob.NewEncoder(conn),
		dec:     gob.NewDecoder(conn),
		closedc: make(chan struct{}),
	}
	// Register the export tap BEFORE the handshake: a peer that has
	// completed its handshake may publish immediately, and that event
	// must already find this side's tap subscribed. (Registering after
	// the hello exchange loses every event published in the window
	// between the peer's Link returning and our NewTap call.)
	tap, err := n.Sys.NewTap(export, 1024)
	if err != nil {
		conn.Close()
		return nil, err
	}
	l.tap = tap
	// Handshake: exchange names, then start pumping.
	errc := make(chan error, 1)
	go func() { errc <- l.enc.Encode(nodeHello{Name: n.Name, Proto: protoVersion}) }()
	var hello nodeHello
	if err := l.dec.Decode(&hello); err != nil {
		tap.Close()
		conn.Close()
		return nil, fmt.Errorf("distrib: handshake read: %w", err)
	}
	if err := <-errc; err != nil {
		tap.Close()
		conn.Close()
		return nil, fmt.Errorf("distrib: handshake write: %w", err)
	}
	if hello.Proto != protoVersion {
		tap.Close()
		conn.Close()
		return nil, fmt.Errorf("distrib: protocol mismatch: %d != %d", hello.Proto, protoVersion)
	}
	l.remote = hello.Name

	n.mu.Lock()
	n.links = append(n.links, l)
	n.mu.Unlock()

	n.Sys.Go(l.sendLoop)
	n.Sys.Go(l.recvLoop)
	// Shutdown watcher: recvLoop blocks inside gob.Decode, which knows
	// nothing about the system's done channel. Closing the connection
	// here guarantees the decode aborts and recvLoop exits — without it
	// System.Close deadlocks in wg.Wait whenever a link is idle (the
	// send side may equally be wedged mid-Encode, so it cannot be
	// relied on to close the connection). The watcher also exits when
	// the link itself closes first, so churned links do not accumulate
	// parked goroutines for the life of the system.
	n.Sys.Go(func() {
		select {
		case <-n.Sys.Done():
			l.Close()
		case <-l.closedc:
		}
	})
	return l, nil
}

// Remote returns the peer node's name.
func (l *Link) Remote() string { return l.remote }

// Exported reports events sent to the peer.
func (l *Link) Exported() uint64 { return l.exported.Load() }

// Imported reports events received from the peer.
func (l *Link) Imported() uint64 { return l.imported.Load() }

// Dropped reports events withheld by loop prevention or the hop limit.
func (l *Link) Dropped() uint64 { return l.dropped.Load() }

// Close tears the link down.
func (l *Link) Close() {
	if !l.closed.CompareAndSwap(false, true) {
		return
	}
	close(l.closedc)
	l.tap.Close()
	l.conn.Close()
}

// maxHops resolves the node's hop limit.
func (n *Node) maxHops() int {
	if n.MaxHops > 0 {
		return n.MaxHops
	}
	return DefaultMaxHops
}

// appendExport serialises one tapped event into the frame, applying
// loop prevention: an event never travels back towards the node it
// arrived from, and stops once it has spent the hop budget.
func (l *Link) appendExport(frame *wireFrame, e *events.Event) {
	if e.Origin == l.remote || int(e.Hops) >= l.node.maxHops() {
		l.dropped.Add(1)
		return
	}
	we, err := EncodeEvent(e, l.node.Name)
	if err != nil {
		l.dropped.Add(1)
		return
	}
	we.Hops = e.Hops + 1
	frame.Events = append(frame.Events, we)
}

// sendLoop forwards tapped events to the peer in frames: it blocks
// for the first event, then greedily drains whatever else is already
// queued on the tap (up to maxLinkBatch) into the same frame, so a
// backlogged link pays one gob encode per frame instead of per event.
func (l *Link) sendLoop() {
	frame := wireFrame{Events: make([]wireEvent, 0, maxLinkBatch)}
	for {
		frame.Events = frame.Events[:0]
		select {
		case e := <-l.tap.Events():
			l.appendExport(&frame, e)
		case <-l.node.Sys.Done():
			l.Close()
			return
		}
	drain:
		for len(frame.Events) < maxLinkBatch {
			select {
			case e := <-l.tap.Events():
				l.appendExport(&frame, e)
			default:
				break drain
			}
		}
		if len(frame.Events) == 0 {
			continue // everything was dropped by loop prevention
		}
		l.sendMu.Lock()
		err := l.enc.Encode(frame)
		l.sendMu.Unlock()
		if err != nil {
			l.Close()
			return
		}
		l.exported.Add(uint64(len(frame.Events)))
	}
}

// recvLoop materialises peer events into the local system: each frame
// is decoded into a batch buffer and published through the batched
// dispatch path (InjectBatch), preserving the frame's event order.
func (l *Link) recvLoop() {
	batch := make([]*events.Event, 0, maxLinkBatch)
	for {
		var frame wireFrame
		if err := l.dec.Decode(&frame); err != nil {
			l.Close()
			return
		}
		batch = batch[:0]
		for _, we := range frame.Events {
			e, err := DecodeEvent(we, l.node.Sys.NextEventID(), l.node.Sys.TagStore())
			if err != nil {
				l.dropped.Add(1)
				continue
			}
			batch = append(batch, e)
		}
		if len(batch) == 0 {
			continue
		}
		if err := l.node.Sys.InjectBatch(batch); err != nil {
			l.Close()
			return
		}
		l.imported.Add(uint64(len(batch)))
		// Drop the event references: the buffer lives for the life of
		// the link and must not pin the previous frame's events.
		clear(batch)
	}
}

// ConnectPipe links two in-process nodes through a synchronous pipe —
// the unit-test and single-host topology. exportA filters what a sends
// to b; exportB the reverse.
func ConnectPipe(a, b *Node, exportA, exportB *dispatch.Filter) (*Link, *Link, error) {
	ca, cb := net.Pipe()
	type res struct {
		l   *Link
		err error
	}
	ch := make(chan res, 1)
	go func() {
		l, err := b.Link(cb, exportB)
		ch <- res{l, err}
	}()
	la, err := a.Link(ca, exportA)
	if err != nil {
		cb.Close()
		return nil, nil, err
	}
	rb := <-ch
	if rb.err != nil {
		la.Close()
		return nil, nil, rb.err
	}
	return la, rb.l, nil
}

// Listen accepts inbound links on a TCP address, attaching the given
// export filter to each. It returns the listener's address and a stop
// function.
func (n *Node) Listen(addr string, export *dispatch.Filter) (string, func(), error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, err
	}
	n.Sys.Go(func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			if _, err := n.Link(conn, export); err != nil {
				conn.Close()
			}
		}
	})
	return ln.Addr().String(), func() { ln.Close() }, nil
}

// Dial connects to a peer node over TCP.
func (n *Node) Dial(addr string, export *dispatch.Filter) (*Link, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return n.Link(conn, export)
}
