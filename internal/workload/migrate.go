package workload

import "math/rand"

// MigrationPoint marks one live symbol hand-off in the chaos suite:
// after wave Wave reaches its quiescent point, Symbol (an index into
// the universe's symbol list, so callers with different universes can
// share a schedule) is migrated to broker shard Dst while the next
// wave's flow is already being generated.
type MigrationPoint struct {
	Wave   int
	Symbol int
	Dst    int
}

// MigrationSchedule derives a deterministic migration schedule from a
// seed: each wave past the first migrates with probability 1/2 (wave 0
// never migrates, so every run exercises the pristine home routing
// first), and at least one migration always happens. Destinations are
// drawn uniformly; a draw that lands on the symbol's current shard is
// legal — the rebalancer treats it as a no-op and the suite must
// tolerate that.
func MigrationSchedule(seed int64, waves, shards, symbols int) []MigrationPoint {
	rng := rand.New(rand.NewSource(seed))
	var pts []MigrationPoint
	for w := 1; w < waves; w++ {
		if rng.Intn(2) == 0 {
			pts = append(pts, MigrationPoint{
				Wave:   w,
				Symbol: rng.Intn(symbols),
				Dst:    rng.Intn(shards),
			})
		}
	}
	if len(pts) == 0 {
		pts = append(pts, MigrationPoint{
			Wave:   waves - 1,
			Symbol: rng.Intn(symbols),
			Dst:    rng.Intn(shards),
		})
	}
	return pts
}
