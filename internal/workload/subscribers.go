package workload

// Market-data subscriber populations: the consumer side of the
// fanout benchmark. A population mixes the three consumer shapes that
// stress different feed paths — fast pollers that drain every batch
// (the steady-state zero-alloc path), slow pollers that overflow
// their rings and exercise conflation/recovery, and churners that
// disconnect and rejoin (the late-joiner snapshot path). A fraction
// of the population can be unentitled, populating a second label
// class so the per-(batch, class) check has something to refuse.
//
// Everything is deterministic under a seed.

import "math/rand"

// SubKind classifies one subscriber's consumption behaviour.
type SubKind uint8

const (
	// SubFast drains on every poll round.
	SubFast SubKind = iota
	// SubSlow drains only every PollEvery rounds — far behind a busy
	// feed, it lives on conflation.
	SubSlow
	// SubChurn unsubscribes and rejoins every ChurnEvery rounds,
	// re-entering through snapshot recovery each time.
	SubChurn
)

// String names the kind for series labels.
func (k SubKind) String() string {
	switch k {
	case SubSlow:
		return "slow"
	case SubChurn:
		return "churn"
	default:
		return "fast"
	}
}

// SubscriberProfile describes one subscriber in a population.
type SubscriberProfile struct {
	Kind SubKind
	// PollEvery is the drain cadence in poll rounds (1 for fast
	// subscribers; > 1 for slow ones).
	PollEvery int
	// ChurnEvery is the reconnect cadence in poll rounds (churners
	// only).
	ChurnEvery int
	// Entitled subscribers present the feed's entitlement label;
	// unentitled ones present Public and are refused by the flow
	// check in label-checking modes.
	Entitled bool
}

// SubscriberMix shapes a population. Percentages are of the total
// population; the remainder after Slow and Churn is Fast.
type SubscriberMix struct {
	// SlowPct and ChurnPct set the slow/churning fractions (defaults
	// 20 and 10; fast gets the rest).
	SlowPct  int
	ChurnPct int
	// SlowMax bounds the slow drain cadence: slow subscribers poll
	// every 2..SlowMax rounds (default 64).
	SlowMax int
	// ChurnMax bounds the reconnect cadence: churners rejoin every
	// 8..ChurnMax rounds (default 256).
	ChurnMax int
	// UnentitledPct is the fraction presenting the Public label
	// (default 0).
	UnentitledPct int
}

func (m *SubscriberMix) defaults() {
	if m.SlowPct == 0 && m.ChurnPct == 0 {
		m.SlowPct, m.ChurnPct = 20, 10
	}
	if m.SlowMax < 2 {
		m.SlowMax = 64
	}
	if m.ChurnMax < 8 {
		m.ChurnMax = 256
	}
}

// Subscribers builds a deterministic population of n profiles.
func Subscribers(n int, mix SubscriberMix, seed int64) []SubscriberProfile {
	mix.defaults()
	rng := rand.New(rand.NewSource(seed))
	out := make([]SubscriberProfile, n)
	for i := range out {
		p := SubscriberProfile{Kind: SubFast, PollEvery: 1, Entitled: true}
		switch r := rng.Intn(100); {
		case r < mix.SlowPct:
			p.Kind = SubSlow
			p.PollEvery = 2 + rng.Intn(mix.SlowMax-1)
		case r < mix.SlowPct+mix.ChurnPct:
			p.Kind = SubChurn
			p.PollEvery = 1
			p.ChurnEvery = 8 + rng.Intn(mix.ChurnMax-7)
		}
		if mix.UnentitledPct > 0 && rng.Intn(100) < mix.UnentitledPct {
			p.Entitled = false
		}
		out[i] = p
	}
	return out
}
