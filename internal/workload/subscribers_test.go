package workload

import "testing"

// TestSubscribersDeterministic: same seed, same population.
func TestSubscribersDeterministic(t *testing.T) {
	a := Subscribers(500, SubscriberMix{UnentitledPct: 25}, 9)
	b := Subscribers(500, SubscriberMix{UnentitledPct: 25}, 9)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("profile %d differs across identical seeds: %+v vs %+v", i, a[i], b[i])
		}
	}
	if c := Subscribers(500, SubscriberMix{UnentitledPct: 25}, 10); func() bool {
		for i := range a {
			if a[i] != c[i] {
				return false
			}
		}
		return true
	}() {
		t.Fatal("different seeds produced identical populations")
	}
}

// TestSubscribersMixShape: the default mix lands near 70/20/10 and
// cadences stay in their documented ranges.
func TestSubscribersMixShape(t *testing.T) {
	pop := Subscribers(10000, SubscriberMix{UnentitledPct: 30}, 4)
	counts := map[SubKind]int{}
	unent := 0
	for _, p := range pop {
		counts[p.Kind]++
		switch p.Kind {
		case SubFast:
			if p.PollEvery != 1 || p.ChurnEvery != 0 {
				t.Fatalf("fast profile malformed: %+v", p)
			}
		case SubSlow:
			if p.PollEvery < 2 || p.PollEvery > 64 {
				t.Fatalf("slow cadence out of range: %+v", p)
			}
		case SubChurn:
			if p.ChurnEvery < 8 || p.ChurnEvery > 256 {
				t.Fatalf("churn cadence out of range: %+v", p)
			}
		}
		if !p.Entitled {
			unent++
		}
	}
	within := func(got, wantPct, tolPct int) bool {
		want := len(pop) * wantPct / 100
		tol := len(pop) * tolPct / 100
		return got >= want-tol && got <= want+tol
	}
	if !within(counts[SubFast], 70, 3) || !within(counts[SubSlow], 20, 3) || !within(counts[SubChurn], 10, 3) {
		t.Fatalf("mix off: fast=%d slow=%d churn=%d", counts[SubFast], counts[SubSlow], counts[SubChurn])
	}
	if !within(unent, 30, 3) {
		t.Fatalf("unentitled off: %d", unent)
	}
}
