package workload

import "math/rand"

// CrashPoint marks one kill/recover event in the chaos suite: after
// wave Wave reaches its quiescent point the platform's in-memory
// state is dropped and rebuilt from the journal alone, with shard
// Shard's recovered state spot-checked against the pre-kill snapshot.
type CrashPoint struct {
	Wave  int
	Shard int
}

// CrashSchedule derives a deterministic kill schedule from a seed:
// each wave past the first crashes with probability 1/2 (wave 0 never
// crashes, so every run exercises an uncrashed stretch first), and at
// least one crash always happens.
func CrashSchedule(seed int64, waves, shards int) []CrashPoint {
	rng := rand.New(rand.NewSource(seed))
	var pts []CrashPoint
	for w := 1; w < waves; w++ {
		if rng.Intn(2) == 0 {
			pts = append(pts, CrashPoint{Wave: w, Shard: rng.Intn(shards)})
		}
	}
	if len(pts) == 0 {
		pts = append(pts, CrashPoint{Wave: waves - 1, Shard: rng.Intn(shards)})
	}
	return pts
}
