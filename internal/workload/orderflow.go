package workload

// Order-flow traces: a deterministic stream of limit/market/cancel
// operations over a universe's symbols, the workload that exercises
// the dark pool's limit order book directly (price levels, partial
// fills, cancels) rather than through the pairs-trading monitors.
//
// The shape follows the usual order-flow decomposition of equity
// microstructure traces: a configurable fraction of aggressive orders
// that cross the touch (and so generate fills, often partial), passive
// orders layered a bounded number of ticks behind the touch (book
// depth), and cancels of recent resting interest. Ops arrive in short
// per-trader bursts so the batched publish path has runs to amortise.
//
// Everything is deterministic under a seed.

import "math/rand"

// OrderKind classifies one order-flow operation.
type OrderKind uint8

const (
	// OpLimit is a limit order: matches what it crosses, rests the
	// residual.
	OpLimit OrderKind = iota
	// OpMarket is a market order: sweeps the opposite side up to its
	// quantity, never rests.
	OpMarket
	// OpCancel withdraws a previously issued resting order by ID.
	OpCancel
	// OpAmend modifies a previously issued resting order by ID: a
	// quantity reduction at the same price keeps time priority, any
	// other change re-enters as fresh interest.
	OpAmend
)

// String renders the kind in the event vocabulary's spelling.
func (k OrderKind) String() string {
	switch k {
	case OpMarket:
		return "market"
	case OpCancel:
		return "cancel"
	case OpAmend:
		return "amend"
	default:
		return "limit"
	}
}

// flowIDBase offsets flow-assigned order IDs away from the ID space
// traders mint for monitor-driven orders (idx·1e6 + seq), so the two
// order populations never collide in a book.
const flowIDBase = int64(1) << 40

// OrderOp is one operation of an order-flow trace.
type OrderOp struct {
	Seq    uint64
	Trader int // index into the platform's trader population
	Kind   OrderKind
	ID     int64 // order ID for limit/market (unique per trace)
	Target int64 // resting order ID a cancel refers to
	Symbol string
	Side   string // "bid" or "ask"
	Price  int64  // limit price in cents; 0 for market/cancel
	Qty    int64  // shares; 0 for cancel
}

// FlowConfig shapes an order-flow trace. The zero value of any field
// selects its default.
type FlowConfig struct {
	// Traders is the population ops are spread over (default 1).
	Traders int
	// AggressionPct is the percentage of orders priced through the
	// touch — the crossing flow that generates (partial) fills
	// (default 40).
	AggressionPct int
	// MarketPct is the percentage of aggressive orders submitted as
	// market rather than marketable-limit orders (default 25).
	MarketPct int
	// CancelPct is the percentage of ops that withdraw recent resting
	// interest (default 10).
	CancelPct int
	// AmendPct is the percentage of ops that amend recent resting
	// interest — reprice toward or away from the touch, or resize
	// (default 0, so existing trace seeds replay byte-identically).
	AmendPct int
	// SymbolSkew, when > 1, draws each burst's symbol from a Zipf
	// distribution with parameter s = SymbolSkew over the universe's
	// symbols instead of uniformly — the hot-symbol concentration a
	// sharded matching pool has to survive. 0 keeps the uniform draw.
	SymbolSkew float64
	// Depth is how many price ticks behind the anchor passive orders
	// may rest — the book's depth in levels per side (default 8).
	Depth int
	// BurstMax bounds the consecutive ops one trader emits before the
	// flow moves on (default 4); batched replay publishes each burst
	// as one PublishBatch.
	BurstMax int
	// QtyUnit is the base quantity unit: passive orders carry 1–4
	// units, aggressive orders 1–10, so takers routinely outsize the
	// makers they cross and fills split (default 100).
	QtyUnit int64
}

func (c *FlowConfig) defaults() {
	if c.Traders <= 0 {
		c.Traders = 1
	}
	if c.AggressionPct == 0 {
		c.AggressionPct = 40
	}
	if c.MarketPct == 0 {
		c.MarketPct = 25
	}
	if c.CancelPct == 0 {
		c.CancelPct = 10
	}
	if c.Depth <= 0 {
		c.Depth = 8
	}
	if c.BurstMax <= 0 {
		c.BurstMax = 4
	}
	if c.QtyUnit <= 0 {
		c.QtyUnit = 100
	}
}

// flowRef remembers one resting order a trader could cancel.
type flowRef struct {
	id     int64
	symbol string
}

// recentCap bounds each trader's cancellable-order memory.
const recentCap = 16

// OrderFlow is a deterministic order-flow trace over a universe.
type OrderFlow struct {
	u    *Universe
	cfg  FlowConfig
	rng  *rand.Rand
	zipf *rand.Zipf // non-nil iff SymbolSkew > 1

	seq       uint64
	trader    int
	symbol    string
	burstLeft int

	recent [][]flowRef // per-trader ring of recent resting orders
}

// NewOrderFlow starts a trace over the universe's symbols.
func NewOrderFlow(u *Universe, cfg FlowConfig, seed int64) *OrderFlow {
	cfg.defaults()
	f := &OrderFlow{
		u:      u,
		cfg:    cfg,
		rng:    rand.New(rand.NewSource(seed)),
		recent: make([][]flowRef, cfg.Traders),
	}
	if cfg.SymbolSkew > 1 && len(u.Symbols) > 1 {
		f.zipf = rand.NewZipf(f.rng, cfg.SymbolSkew, 1, uint64(len(u.Symbols)-1))
	}
	return f
}

// tickOf is the price increment for a symbol: ~5 bps of the anchor,
// floor 1 cent.
func tickOf(base int64) int64 {
	if t := base / 2000; t > 1 {
		return t
	}
	return 1
}

// Next produces the next operation.
func (f *OrderFlow) Next() OrderOp {
	if f.burstLeft == 0 {
		f.trader = f.rng.Intn(f.cfg.Traders)
		f.burstLeft = 1 + f.rng.Intn(f.cfg.BurstMax)
		if f.zipf != nil {
			f.symbol = f.u.Symbols[f.zipf.Uint64()]
		} else {
			f.symbol = f.u.Symbols[f.rng.Intn(len(f.u.Symbols))]
		}
	}
	f.burstLeft--
	f.seq++
	op := OrderOp{Seq: f.seq, Trader: f.trader, Symbol: f.symbol}

	if f.rng.Intn(100) < f.cfg.CancelPct {
		if ref, ok := f.popRecent(f.trader); ok {
			op.Kind = OpCancel
			op.Target = ref.id
			op.Symbol = ref.symbol
			return op
		}
	}
	if f.cfg.AmendPct > 0 && f.rng.Intn(100) < f.cfg.AmendPct {
		if ref, ok := f.peekRecent(f.trader); ok {
			// Amend keeps the order alive (under a possibly new price),
			// so the ref stays in the cancel memory; an amend or cancel
			// whose target already filled is ignored downstream, like a
			// stale cancel.
			op.Kind = OpAmend
			op.Target = ref.id
			op.Symbol = ref.symbol
			base := f.u.BasePrice(ref.symbol)
			tick := tickOf(base)
			op.Qty = f.cfg.QtyUnit * int64(1+f.rng.Intn(4))
			// Reprice within the passive band on either side of the
			// anchor; amends that cross the touch re-enter and fill.
			off := tick * int64(1+f.rng.Intn(f.cfg.Depth))
			if f.rng.Intn(2) == 1 {
				op.Price = base + off
			} else {
				op.Price = base - off
			}
			return op
		}
	}

	op.ID = flowIDBase + int64(f.seq)
	side := "bid"
	if f.rng.Intn(2) == 1 {
		side = "ask"
	}
	op.Side = side
	base := f.u.BasePrice(op.Symbol)
	tick := tickOf(base)

	if f.rng.Intn(100) < f.cfg.AggressionPct {
		// Aggressive: cross the anchor by 1..Depth ticks, sized to
		// outweigh typical passive orders so fills split.
		op.Qty = f.cfg.QtyUnit * int64(1+f.rng.Intn(10))
		if f.rng.Intn(100) < f.cfg.MarketPct {
			op.Kind = OpMarket
			return op
		}
		op.Kind = OpLimit
		through := tick * int64(1+f.rng.Intn(f.cfg.Depth))
		if side == "bid" {
			op.Price = base + through
		} else {
			op.Price = base - through
		}
		return op
	}

	// Passive: rest 1..Depth ticks behind the anchor.
	op.Kind = OpLimit
	op.Qty = f.cfg.QtyUnit * int64(1+f.rng.Intn(4))
	behind := tick * int64(1+f.rng.Intn(f.cfg.Depth))
	if side == "bid" {
		op.Price = base - behind
	} else {
		op.Price = base + behind
	}
	f.pushRecent(f.trader, flowRef{id: op.ID, symbol: op.Symbol})
	return op
}

// Take materialises the next n operations.
func (f *OrderFlow) Take(n int) []OrderOp {
	out := make([]OrderOp, n)
	for i := range out {
		out[i] = f.Next()
	}
	return out
}

// OffsetOrderIDs shifts every flow-assigned order ID (and the targets
// referring to them) by offset, in place. Independent sessions each
// drawing their own trace from seed-distinct flows use it to keep
// their ID spaces disjoint inside one book: cancels and amends keep
// resolving because targets move with the IDs they name.
func OffsetOrderIDs(ops []OrderOp, offset int64) []OrderOp {
	for i := range ops {
		if ops[i].ID != 0 {
			ops[i].ID += offset
		}
		if ops[i].Target != 0 {
			ops[i].Target += offset
		}
	}
	return ops
}

// pushRecent remembers a resting order for later cancellation.
func (f *OrderFlow) pushRecent(trader int, ref flowRef) {
	r := f.recent[trader]
	if len(r) >= recentCap {
		copy(r, r[1:])
		r = r[:recentCap-1]
	}
	f.recent[trader] = append(r, ref)
}

// peekRecent picks a random remembered order without forgetting it.
func (f *OrderFlow) peekRecent(trader int) (flowRef, bool) {
	r := f.recent[trader]
	if len(r) == 0 {
		return flowRef{}, false
	}
	return r[f.rng.Intn(len(r))], true
}

// popRecent withdraws a random remembered order, if any.
func (f *OrderFlow) popRecent(trader int) (flowRef, bool) {
	r := f.recent[trader]
	if len(r) == 0 {
		return flowRef{}, false
	}
	i := f.rng.Intn(len(r))
	ref := r[i]
	f.recent[trader] = append(r[:i], r[i+1:]...)
	return ref, true
}
