package workload

import (
	"testing"
)

func TestUniverseShape(t *testing.T) {
	u := NewUniverse(8)
	if len(u.Pairs) != 8 || len(u.Symbols) != 16 {
		t.Fatalf("universe: %d pairs, %d symbols", len(u.Pairs), len(u.Symbols))
	}
	seen := make(map[string]bool)
	for _, s := range u.Symbols {
		if seen[s] {
			t.Fatalf("duplicate symbol %s", s)
		}
		seen[s] = true
		if u.BasePrice(s) <= 0 {
			t.Fatalf("symbol %s has no base price", s)
		}
	}
	for _, p := range u.Pairs {
		if p.BaseA == p.BaseB {
			t.Fatal("degenerate pair ratio")
		}
	}
	if NewUniverse(0).PairsFor() != 1 {
		t.Fatal("zero-pair universe not clamped")
	}
}

func TestUniverseForTradersScales(t *testing.T) {
	small := UniverseForTraders(4)
	if small.PairsFor() < 8 {
		t.Fatal("small universe below floor")
	}
	big := UniverseForTraders(100000)
	if big.PairsFor() > 512 {
		t.Fatal("big universe above ceiling")
	}
	mid := UniverseForTraders(400)
	if mid.PairsFor() != 100 {
		t.Fatalf("mid universe = %d pairs, want 100", mid.PairsFor())
	}
}

func TestAssignPairsZipfSkew(t *testing.T) {
	u := NewUniverse(64)
	assign := u.AssignPairs(10000, 42)
	counts := make([]int, 64)
	for _, ix := range assign {
		if ix < 0 || ix >= 64 {
			t.Fatalf("assignment out of range: %d", ix)
		}
		counts[ix]++
	}
	// Zipf: the most popular pair must dominate the median pair.
	max, nonzero := 0, 0
	for _, c := range counts {
		if c > max {
			max = c
		}
		if c > 0 {
			nonzero++
		}
	}
	if max < len(assign)/10 {
		t.Fatalf("top pair has %d/%d traders; expected heavy skew", max, len(assign))
	}
	if nonzero < 8 {
		t.Fatalf("only %d pairs used; tail too thin", nonzero)
	}
}

func TestAssignPairsDeterministic(t *testing.T) {
	u := NewUniverse(16)
	a := u.AssignPairs(100, 7)
	b := u.AssignPairs(100, 7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same-seed assignment diverged")
		}
	}
}

func TestTraceTriggersOncePerPeriod(t *testing.T) {
	u := NewUniverse(4)
	tr := NewTrace(u, 1)
	// Each pair emits 2 ticks per visit (A then B); a full rotation is
	// 8 ticks. After TriggerEvery rotations each pair has triggered
	// exactly once.
	perRotation := len(u.Pairs) * 2
	ticks := tr.Take(perRotation * TriggerEvery * 3)

	triggers := make(map[string]int)
	for _, tk := range ticks {
		if tk.Trigger {
			triggers[tk.Symbol]++
		}
	}
	if len(triggers) != len(u.Pairs) {
		t.Fatalf("%d symbols triggered, want one per pair (%d)", len(triggers), len(u.Pairs))
	}
	for sym, n := range triggers {
		if n != 3 {
			t.Fatalf("symbol %s triggered %d times in 3 periods", sym, n)
		}
	}
}

func TestTraceTriggerMagnitudeExceedsThreshold(t *testing.T) {
	u := NewUniverse(2)
	tr := NewTrace(u, 1)
	for _, tk := range tr.Take(200) {
		base := u.BasePrice(tk.Symbol)
		devBps := (tk.Price - base) * 10000 / base
		if devBps < 0 {
			devBps = -devBps
		}
		if tk.Trigger && devBps < 300 {
			t.Fatalf("trigger tick deviates only %d bps", devBps)
		}
		if !tk.Trigger && devBps > 100 {
			t.Fatalf("noise tick deviates %d bps", devBps)
		}
	}
}

func TestTraceSequencesAndDeterminism(t *testing.T) {
	u := NewUniverse(3)
	a := NewTrace(u, 5).Take(500)
	b := NewTrace(u, 5).Take(500)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same-seed traces diverged")
		}
		if a[i].Seq != uint64(i+1) {
			t.Fatalf("tick %d has seq %d", i, a[i].Seq)
		}
	}
	// Different seeds change noise but not structure.
	c := NewTrace(u, 6).Take(500)
	var differs bool
	for i := range a {
		if a[i].Price != c[i].Price {
			differs = true
		}
		if a[i].Symbol != c[i].Symbol || a[i].Trigger != c[i].Trigger {
			t.Fatal("seed changed trace structure")
		}
	}
	if !differs {
		t.Fatal("different seeds produced identical noise")
	}
}

func TestTraceAlternatesPairSides(t *testing.T) {
	u := NewUniverse(2)
	tr := NewTrace(u, 1)
	ticks := tr.Take(8)
	// Expected order: P0.A, P0.B, P1.A, P1.B, P0.A, ...
	want := []string{
		u.Pairs[0].A, u.Pairs[0].B,
		u.Pairs[1].A, u.Pairs[1].B,
		u.Pairs[0].A, u.Pairs[0].B,
		u.Pairs[1].A, u.Pairs[1].B,
	}
	for i, tk := range ticks {
		if tk.Symbol != want[i] {
			t.Fatalf("tick %d symbol %s, want %s", i, tk.Symbol, want[i])
		}
	}
}
