// Package workload generates the synthetic financial workload of the
// paper's evaluation (§6.2): a stock-tick trace "derived from traces of
// trades made on the London Stock Exchange" in shape — tick prices are
// chosen so that the pairs-trading algorithm triggers for each pair
// once every ten ticks — plus the Zipf assignment of traders to symbol
// pairs ("some symbol pairs are well known to be correlated and, as a
// result, the majority of Traders monitor their prices").
//
// Everything is deterministic under a seed.
package workload

import (
	"fmt"
	"math/rand"
)

// TriggerEvery is the tick period at which a pair's prices diverge
// enough to trigger the pairs-trading algorithm (§6.2: "once every 10
// ticks").
const TriggerEvery = 10

// DivergeBps is the price divergence applied on a trigger tick, in
// basis points. It must exceed trading.DefaultThresholdBps by a
// comfortable margin so every trigger fires.
const DivergeBps = 500 // 5 %

// Tick is one synthetic stock tick.
type Tick struct {
	Seq    uint64
	Symbol string
	// Price is in integer cents: event data stays in the immutable
	// scalar kinds the freeze layer shares for free.
	Price int64
	// Trigger marks ticks engineered to fire the pairs algorithm;
	// tests use it as ground truth.
	Trigger bool
}

// Pair is a correlated symbol pair monitored by traders.
type Pair struct {
	A, B string
	// BaseA and BaseB are the anchor prices; Mean = BaseA/BaseB is the
	// expected price ratio the monitors watch.
	BaseA, BaseB int64
}

// Universe is the tradable world: symbols, their base prices and the
// correlated pairs.
type Universe struct {
	Symbols []string
	Pairs   []Pair
	base    map[string]int64
}

// NewUniverse builds numPairs correlated pairs (2·numPairs symbols).
func NewUniverse(numPairs int) *Universe {
	if numPairs < 1 {
		numPairs = 1
	}
	u := &Universe{base: make(map[string]int64, numPairs*2)}
	for i := 0; i < numPairs; i++ {
		a := fmt.Sprintf("SYM%03dA", i)
		b := fmt.Sprintf("SYM%03dB", i)
		// Distinct bases so ratios differ across pairs.
		pa := int64(10000 + 100*i)
		pb := int64(5000 + 50*i)
		u.Symbols = append(u.Symbols, a, b)
		u.Pairs = append(u.Pairs, Pair{A: a, B: b, BaseA: pa, BaseB: pb})
		u.base[a] = pa
		u.base[b] = pb
	}
	return u
}

// BasePrice returns a symbol's anchor price.
func (u *Universe) BasePrice(sym string) int64 { return u.base[sym] }

// PairsFor returns how many pairs the universe holds.
func (u *Universe) PairsFor() int { return len(u.Pairs) }

// UniverseForTraders sizes a universe to a trader population: enough
// pairs that the Zipf tail has somewhere to land, few enough that
// popular pairs are shared by many traders (the paper's co-monitoring
// effect).
func UniverseForTraders(numTraders int) *Universe {
	pairs := numTraders / 4
	if pairs < 8 {
		pairs = 8
	}
	if pairs > 512 {
		pairs = 512
	}
	return NewUniverse(pairs)
}

// AssignPairs assigns each of numTraders a pair index drawn from a
// Zipf distribution over the universe's pairs.
func (u *Universe) AssignPairs(numTraders int, seed int64) []int {
	out := make([]int, numTraders)
	if len(u.Pairs) < 2 {
		return out // single pair: everyone monitors it
	}
	rng := rand.New(rand.NewSource(seed))
	z := rand.NewZipf(rng, 1.2, 1, uint64(len(u.Pairs)-1))
	for i := range out {
		out[i] = int(z.Uint64())
	}
	return out
}

// Trace is a deterministic tick stream over a universe.
//
// The stream round-robins pairs; within a pair, every TriggerEvery-th
// visit diverges the B symbol's price by DivergeBps, firing every
// monitor of that pair exactly once per TriggerEvery pair-visits.
type Trace struct {
	u      *Universe
	rng    *rand.Rand
	seq    uint64
	pairIx int
	sideB  bool
	visits []uint64 // per-pair visit counts
}

// NewTrace starts a trace over the universe.
func NewTrace(u *Universe, seed int64) *Trace {
	return &Trace{
		u:      u,
		rng:    rand.New(rand.NewSource(seed)),
		visits: make([]uint64, len(u.Pairs)),
	}
}

// Next produces the next tick. Ticks alternate a pair's A and B sides
// then move to the next pair, so both prices of a pair refresh within
// two consecutive ticks — keeping the monitor's ratio view current.
func (t *Trace) Next() Tick {
	p := t.u.Pairs[t.pairIx]
	var tick Tick
	t.seq++
	tick.Seq = t.seq
	if !t.sideB {
		// A-side tick: base price with ±0.2 % noise, never triggering.
		noise := t.rng.Int63n(41) - 20 // ±20 bps
		tick.Symbol = p.A
		tick.Price = p.BaseA + p.BaseA*noise/10000
		t.sideB = true
		return tick
	}
	// B-side tick: every TriggerEvery-th visit diverges. The phase is
	// staggered by pair index so divergence episodes spread across the
	// trace instead of every pair spiking in the same rotation —
	// correlated pairs diverge at uncorrelated times.
	t.visits[t.pairIx]++
	tick.Symbol = p.B
	phase := uint64(t.pairIx % TriggerEvery)
	if t.visits[t.pairIx]%TriggerEvery == phase {
		tick.Price = p.BaseB + p.BaseB*DivergeBps/10000
		tick.Trigger = true
	} else {
		noise := t.rng.Int63n(41) - 20
		tick.Price = p.BaseB + p.BaseB*noise/10000
	}
	t.sideB = false
	t.pairIx = (t.pairIx + 1) % len(t.u.Pairs)
	return tick
}

// Take materialises the next n ticks.
func (t *Trace) Take(n int) []Tick {
	out := make([]Tick, n)
	for i := range out {
		out[i] = t.Next()
	}
	return out
}
