package workload

import (
	"testing"
)

func TestOrderFlowDeterministic(t *testing.T) {
	u := NewUniverse(4)
	a := NewOrderFlow(u, FlowConfig{Traders: 8}, 7).Take(2000)
	b := NewOrderFlow(u, FlowConfig{Traders: 8}, 7).Take(2000)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same-seed flows diverged at %d: %+v vs %+v", i, a[i], b[i])
		}
	}
	c := NewOrderFlow(u, FlowConfig{Traders: 8}, 8).Take(2000)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical flows")
	}
}

func TestOrderFlowShape(t *testing.T) {
	u := NewUniverse(4)
	cfg := FlowConfig{Traders: 8}
	ops := NewOrderFlow(u, cfg, 11).Take(10000)
	kinds := map[OrderKind]int{}
	issued := map[int64]bool{}
	for i := range ops {
		op := &ops[i]
		kinds[op.Kind]++
		if op.Seq != uint64(i+1) {
			t.Fatalf("op %d has seq %d", i, op.Seq)
		}
		if op.Trader < 0 || op.Trader >= 8 {
			t.Fatalf("op %d trader %d out of range", i, op.Trader)
		}
		if u.BasePrice(op.Symbol) == 0 {
			t.Fatalf("op %d has unknown symbol %q", i, op.Symbol)
		}
		switch op.Kind {
		case OpCancel:
			if !issued[op.Target] {
				t.Fatalf("op %d cancels never-issued order %d", i, op.Target)
			}
			if op.ID != 0 || op.Qty != 0 {
				t.Fatalf("cancel op carries order fields: %+v", op)
			}
		case OpMarket:
			if op.Qty <= 0 || op.Price != 0 || op.ID < flowIDBase {
				t.Fatalf("bad market op %+v", op)
			}
		case OpLimit:
			if op.Qty <= 0 || op.Price <= 0 || op.ID < flowIDBase {
				t.Fatalf("bad limit op %+v", op)
			}
			if issued[op.ID] {
				t.Fatalf("op %d reuses ID %d", i, op.ID)
			}
			issued[op.ID] = true
			// Limit prices stay within Depth+1 ticks of the anchor.
			base := u.BasePrice(op.Symbol)
			tick := tickOf(base)
			dev := op.Price - base
			if dev < 0 {
				dev = -dev
			}
			if dev == 0 || dev > tick*int64(cfg.Depth+8) {
				t.Fatalf("op %d priced %d ticks off anchor", i, dev/tick)
			}
		}
		if op.Side != "" && op.Side != "bid" && op.Side != "ask" {
			t.Fatalf("op %d side %q", i, op.Side)
		}
	}
	if kinds[OpLimit] < 6000 || kinds[OpMarket] < 200 || kinds[OpCancel] < 200 {
		t.Fatalf("kind mix off: %+v", kinds)
	}
}

func TestOrderFlowAmendOps(t *testing.T) {
	u := NewUniverse(4)
	ops := NewOrderFlow(u, FlowConfig{Traders: 8, AmendPct: 15}, 11).Take(10000)
	issued := map[int64]string{}
	amends := 0
	for i := range ops {
		op := &ops[i]
		if op.Kind == OpLimit {
			issued[op.ID] = op.Symbol
		}
		if op.Kind != OpAmend {
			continue
		}
		amends++
		sym, ok := issued[op.Target]
		if !ok {
			t.Fatalf("op %d amends never-issued order %d", i, op.Target)
		}
		if sym != op.Symbol {
			t.Fatalf("op %d amends order %d under symbol %q, issued under %q", i, op.Target, op.Symbol, sym)
		}
		if op.Qty <= 0 || op.Price <= 0 || op.ID != 0 {
			t.Fatalf("bad amend op %+v", op)
		}
	}
	if amends < 400 {
		t.Fatalf("only %d amends in 10000 ops at AmendPct 15", amends)
	}
	// AmendPct 0 (the default) must not consume extra randomness: the
	// zero-config stream stays byte-identical to the pre-amend shape,
	// which established seeds depend on.
	a := NewOrderFlow(u, FlowConfig{Traders: 8}, 7).Take(500)
	b := NewOrderFlow(u, FlowConfig{Traders: 8, AmendPct: 0}, 7).Take(500)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("zero AmendPct perturbed the trace at %d", i)
		}
	}
}

func TestOrderFlowSymbolSkew(t *testing.T) {
	u := NewUniverse(16) // 32 symbols
	count := func(skew float64) map[string]int {
		ops := NewOrderFlow(u, FlowConfig{Traders: 8, SymbolSkew: skew}, 13).Take(20000)
		m := map[string]int{}
		for i := range ops {
			m[ops[i].Symbol]++
		}
		return m
	}
	top := func(m map[string]int) int {
		best := 0
		for _, n := range m {
			if n > best {
				best = n
			}
		}
		return best
	}
	uniform, skewed := count(0), count(1.4)
	if topU, topS := top(uniform), top(skewed); topS < 2*topU {
		t.Fatalf("skew 1.4 top symbol %d ops vs uniform %d: no concentration", topS, topU)
	}
	// Skewed flows stay deterministic under a seed.
	a := NewOrderFlow(u, FlowConfig{Traders: 8, SymbolSkew: 1.4}, 13).Take(2000)
	b := NewOrderFlow(u, FlowConfig{Traders: 8, SymbolSkew: 1.4}, 13).Take(2000)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same-seed skewed flows diverged at %d", i)
		}
	}
}

func TestOrderFlowBurstsBoundedAndBatched(t *testing.T) {
	u := NewUniverse(2)
	cfg := FlowConfig{Traders: 16, BurstMax: 4}
	ops := NewOrderFlow(u, cfg, 3).Take(5000)
	run, runs, maxRun := 1, 0, 0
	for i := 1; i < len(ops); i++ {
		if ops[i].Trader == ops[i-1].Trader {
			run++
			continue
		}
		runs++
		if run > maxRun {
			maxRun = run
		}
		run = 1
	}
	// Bursts exist (so the batched publish path has runs to amortise)
	// and stay bounded: consecutive same-trader bursts can merge, but
	// at 16 traders the odds of long merged runs are negligible.
	if maxRun < 2 {
		t.Fatal("flow never bursts")
	}
	if maxRun > 4*cfg.BurstMax {
		t.Fatalf("burst run of %d ops", maxRun)
	}
	if runs < 1000 {
		t.Fatalf("only %d trader switches in 5000 ops", runs)
	}
}

func TestOrderFlowAggressionCrossesAnchor(t *testing.T) {
	u := NewUniverse(2)
	ops := NewOrderFlow(u, FlowConfig{Traders: 4, AggressionPct: 50}, 9).Take(8000)
	above, below := 0, 0
	for i := range ops {
		op := &ops[i]
		if op.Kind != OpLimit {
			continue
		}
		base := u.BasePrice(op.Symbol)
		if op.Side == "bid" && op.Price > base {
			above++ // marketable bid: crosses any anchor-or-better ask
		}
		if op.Side == "ask" && op.Price < base {
			below++
		}
	}
	if above < 500 || below < 500 {
		t.Fatalf("aggressive flow too thin: %d marketable bids, %d marketable asks", above, below)
	}
}
