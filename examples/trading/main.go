// Trading: the full Figure 4 choreography, narrated.
//
// Two traders share the platform with a Stock Exchange, their Pair
// Monitors, the dark-pool Broker and a Regulator. The run exercises all
// nine steps of the paper's workflow: tag creation and delegation (1),
// integrity-gated tick subscriptions (2), confined match events (3),
// three-way-protected orders (4), managed-subscription brokering (5),
// selectively-readable trades (6), on-demand audit delegation (7),
// quota warnings (8) and endorsed republication (9).
//
// Run: go run ./examples/trading
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/trading"
	"repro/internal/workload"
)

func main() {
	lat := metrics.NewHistogram()
	p, err := trading.New(trading.Config{
		Mode:             core.LabelsFreezeIsolation, // full DEFCon
		NumTraders:       2,
		Universe:         workload.NewUniverse(1), // both traders on one pair
		AuditSampleEvery: 1,                       // audit every trade
		QuotaShares:      200,                     // warn after two trades
		OnTrade:          func(ns int64) { lat.Record(ns) },
	})
	if err != nil {
		log.Fatal(err)
	}
	defer p.Close()

	pair := p.Universe().Pairs[0]
	fmt.Println("DEFCon trading platform (labels+freeze+isolation)")
	fmt.Printf("pair under monitor: %s / %s\n", pair.A, pair.B)
	for _, tr := range p.Traders {
		fmt.Printf("  %s owns tag %v\n", tr.Name(), tr.Tag())
	}

	// Steps 2–9 unfold as the exchange replays the trace: every tenth
	// pair-tick diverges enough to fire the pairs algorithm.
	trace := workload.NewTrace(p.Universe(), 7)
	p.Replay(trace.Take(600))
	p.Quiesce(10 * time.Second)
	time.Sleep(100 * time.Millisecond)

	st := p.Stats()
	fmt.Println("\nworkflow outcome:")
	fmt.Printf("  step 2-3  ticks → matches:      %d ticks, %d matches\n", st.TicksPublished, st.MatchesEmitted)
	fmt.Printf("  step 4    orders placed:        %d (order details at {b}, identity at {b,tr})\n", st.OrdersPlaced)
	fmt.Printf("  step 5-6  dark-pool trades:     %d (public price, tr-protected identities)\n", st.TradesCompleted)
	fmt.Printf("  step 7    audits + delegations: %d / %d\n", st.AuditsRequested, p.Broker.Delegations())
	fmt.Printf("  step 8    quota warnings:       %d\n", st.WarningsReceived)
	fmt.Printf("  step 9    regulator volumes:    %d sides accounted\n", p.Regulator.VolsSeen())
	fmt.Printf("\ntrade latency (tick → trade): %s\n", lat.Snapshot())

	// The security claim of §6.2's comparison: each trader recognised
	// its own trades and nobody else's.
	for _, tr := range p.Traders {
		fmt.Printf("%s: matches=%d orders=%d own-trades=%d warnings=%d\n",
			tr.Name(), tr.Matches(), tr.Orders(), tr.Trades(), tr.Warnings())
	}
}
