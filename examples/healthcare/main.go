// Healthcare: DEFC beyond finance (the paper's second motivating
// domain — "particularly sensitive aspects of patient healthcare data
// are not leaked to all users", §3.1.1).
//
// A clinic publishes patient events whose parts carry different
// sensitivity: observable vitals readable by the research registry, an
// identity part confined to the care team, and a psychiatric-note part
// additionally protected by a per-patient consent tag. A researcher
// aggregates vitals without ever being able to perceive identities; the
// care team reads everything; an auditor gains access to one patient's
// notes only through explicit consent delegation.
//
// Run: go run ./examples/healthcare
package main

import (
	"errors"
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/dispatch"
	"repro/internal/events"
	"repro/internal/freeze"
	"repro/internal/labels"
	"repro/internal/priv"
)

func main() {
	sys := core.NewSystem(core.Config{Mode: core.LabelsFreeze})
	defer sys.Close()

	clinic := sys.NewUnit("clinic", core.UnitConfig{})
	careTeam := labels.NewSet(clinic.CreateTag("s-care-team"))

	// Per-patient consent tags, owned by the clinic on the patients'
	// behalf.
	consent := map[string]labels.Set{
		"patient-007": labels.NewSet(clinic.CreateTag("s-consent-007")),
		"patient-008": labels.NewSet(clinic.CreateTag("s-consent-008")),
	}

	// The research registry sees only what is public in each event.
	research := sys.NewUnit("research-registry", core.UnitConfig{})
	if _, err := research.Subscribe(dispatch.MustFilter(dispatch.PartEq("type", "admission"))); err != nil {
		log.Fatal(err)
	}

	// Publish two admissions with three-way part protection (the
	// healthcare analogue of Figure 1).
	for i, patient := range []string{"patient-007", "patient-008"} {
		e := clinic.CreateEvent()
		must(clinic.AddPart(e, labels.EmptySet, labels.EmptySet, "type", "admission"))
		must(clinic.AddPart(e, labels.EmptySet, labels.EmptySet, "vitals",
			freeze.MapOf("heart_rate", int64(72+i), "spo2", int64(97))))
		must(clinic.AddPart(e, careTeam, labels.EmptySet, "identity", patient))
		must(clinic.AddPart(e, careTeam.Union(consent[patient]), labels.EmptySet,
			"psych_notes", "severe needle phobia"))
		must(clinic.Publish(e))
	}

	// The registry aggregates vitals; identity parts are invisible.
	for i := 0; i < 2; i++ {
		e, _, err := research.GetEvent()
		if err != nil {
			log.Fatal(err)
		}
		v, err := research.ReadOne(e, "vitals")
		if err != nil {
			log.Fatal(err)
		}
		hr := v.Data.(*freeze.Map).GetInt("heart_rate")
		_, idErr := research.ReadPart(e, "identity")
		fmt.Printf("registry: admission with HR=%d; identity visible: %v\n",
			hr, !errors.Is(idErr, core.ErrNoSuchPart))
	}

	// An auditor needs patient-007's notes: the clinic delegates that
	// one consent tag (plus care-team access) — patient-008's notes
	// stay out of reach.
	auditor := sys.NewUnit("auditor", core.UnitConfig{})
	handoff := clinic.CreateEvent()
	must(clinic.AddPart(handoff, labels.EmptySet, labels.EmptySet, "grant", "audit-007"))
	for _, tag := range append(careTeam.Slice(), consent["patient-007"].Slice()...) {
		for _, r := range []priv.Right{priv.Plus, priv.Minus} {
			must(clinic.AttachPrivilegeToPart(handoff, "grant",
				labels.EmptySet, labels.EmptySet, tag, r))
		}
	}
	if _, err := auditor.ReadPart(handoff, "grant"); err != nil {
		log.Fatal(err)
	}
	for _, tag := range append(careTeam.Slice(), consent["patient-007"].Slice()...) {
		must(auditor.ChangeInLabel(core.Confidentiality, core.Add, tag))
	}

	// Re-publish the two events directly to the auditor's hands (it
	// reads by reference, as a unit holding the events would).
	e7, e8 := rebuild(clinic, careTeam, consent, "patient-007"), rebuild(clinic, careTeam, consent, "patient-008")
	if v, err := auditor.ReadOne(e7, "psych_notes"); err == nil {
		fmt.Printf("auditor reads 007's notes after consent: %q\n", v.Data)
	} else {
		log.Fatal(err)
	}
	if _, err := auditor.ReadPart(e8, "psych_notes"); errors.Is(err, core.ErrNoSuchPart) {
		fmt.Println("auditor cannot read 008's notes: no consent delegated")
	}
}

// rebuild publishes a fresh admission event for the named patient and
// returns it.
func rebuild(clinic *core.Unit, careTeam labels.Set, consent map[string]labels.Set, patient string) *events.Event {
	e := clinic.CreateEvent()
	must(clinic.AddPart(e, labels.EmptySet, labels.EmptySet, "type", "admission"))
	must(clinic.AddPart(e, careTeam, labels.EmptySet, "identity", patient))
	must(clinic.AddPart(e, careTeam.Union(consent[patient]), labels.EmptySet,
		"psych_notes", "severe needle phobia"))
	must(clinic.Publish(e))
	return e
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
