// Quickstart: the DEFC model in 80 lines.
//
// Two clients share one DEFCon system. Alice protects a message with a
// tag she owns; Bob cannot perceive it — neither by subscription nor by
// reading parts — until Alice delegates the privilege through a
// privilege-carrying event (§3.1.5). No access-control lists: the label
// lattice does all the work, end to end.
//
// Run: go run ./examples/quickstart
package main

import (
	"errors"
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/dispatch"
	"repro/internal/labels"
	"repro/internal/priv"
)

func main() {
	sys := core.NewSystem(core.Config{Mode: core.LabelsFreeze})
	defer sys.Close()

	alice := sys.NewUnit("alice", core.UnitConfig{})
	bob := sys.NewUnit("bob", core.UnitConfig{})

	// Bob subscribes to everything called "note".
	if _, err := bob.Subscribe(dispatch.MustFilter(dispatch.PartExists("note"))); err != nil {
		log.Fatal(err)
	}

	// Alice mints a tag (she receives full privilege over it) and
	// publishes a protected note.
	secret := alice.CreateTag("s-alice")
	e := alice.CreateEvent()
	if err := alice.AddPart(e, labels.NewSet(secret), labels.EmptySet,
		"note", "meet at the dark pool"); err != nil {
		log.Fatal(err)
	}
	if err := alice.Publish(e); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("alice published a note protected by %v\n", secret)
	fmt.Printf("bob's queue after publish: %d (label check blocked delivery)\n", bob.QueueLen())

	// Even with a direct reference to the event, Bob cannot read it.
	if _, err := bob.ReadPart(e, "note"); errors.Is(err, core.ErrNoSuchPart) {
		fmt.Println("bob.ReadPart: no such part (absence and invisibility are indistinguishable)")
	}

	// Alice delegates s+ via a privilege-carrying event part.
	grant := alice.CreateEvent()
	if err := alice.AddPart(grant, labels.EmptySet, labels.EmptySet, "handoff", secret); err != nil {
		log.Fatal(err)
	}
	for _, r := range []priv.Right{priv.Plus, priv.Minus} {
		if err := alice.AttachPrivilegeToPart(grant, "handoff",
			labels.EmptySet, labels.EmptySet, secret, r); err != nil {
			log.Fatal(err)
		}
	}

	// Bob reads the hand-off (public part): the read bestows s±.
	if _, err := bob.ReadPart(grant, "handoff"); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("bob now holds s+: %v, s-: %v\n",
		bob.HasPrivilege(secret, priv.Plus), bob.HasPrivilege(secret, priv.Minus))

	// Bob raises his input label and reads the note.
	if err := bob.ChangeInLabel(core.Confidentiality, core.Add, secret); err != nil {
		log.Fatal(err)
	}
	views, err := bob.ReadPart(e, "note")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("bob reads after delegation: %q\n", views[0].Data)
}
