// Distributed: two DEFCon nodes linked over TCP — the paper's §7
// future work ("a distributed system built from a set of DEFCON
// nodes") made concrete.
//
// A London node hosts a trader whose order flow is protected by a tag
// it owns; a Frankfurt node hosts an analytics unit and an auditor.
// The link forwards order events with labels, tag identities and
// carried privilege grants intact: analytics on the remote node still
// cannot perceive the protected part, while the auditor — who receives
// the delegation through the same event — can.
//
// Run: go run ./examples/distributed
package main

import (
	"errors"
	"fmt"
	"log"
	"time"

	"repro/internal/core"
	"repro/internal/dispatch"
	"repro/internal/distrib"
	"repro/internal/freeze"
	"repro/internal/labels"
	"repro/internal/priv"
)

func main() {
	london := distrib.NewNode(core.NewSystem(core.Config{Mode: core.LabelsFreeze, Seed: 1}), "london")
	frankfurt := distrib.NewNode(core.NewSystem(core.Config{Mode: core.LabelsFreeze, Seed: 2}), "frankfurt")
	defer london.Sys.Close()
	defer frankfurt.Sys.Close()

	// Both directions forward order events; each node's dispatcher
	// keeps enforcing DEFC for its own units.
	exportFilter := dispatch.MustFilter(dispatch.PartEq("type", "order"))
	addr, stop, err := london.Listen("127.0.0.1:0", exportFilter)
	if err != nil {
		log.Fatal(err)
	}
	defer stop()
	link, err := frankfurt.Dial(addr, exportFilter)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("linked %s <-> %s over TCP (%s)\n", "frankfurt", link.Remote(), addr)

	// Frankfurt units.
	analytics := frankfurt.Sys.NewUnit("analytics", core.UnitConfig{})
	if _, err := analytics.Subscribe(dispatch.MustFilter(dispatch.PartEq("type", "order"))); err != nil {
		log.Fatal(err)
	}
	auditor := frankfurt.Sys.NewUnit("auditor", core.UnitConfig{})
	if _, err := auditor.Subscribe(dispatch.MustFilter(dispatch.PartEq("type", "order"))); err != nil {
		log.Fatal(err)
	}

	// London trader publishes an order: public type + audit hand-off,
	// protected details.
	trader := london.Sys.NewUnit("trader", core.UnitConfig{})
	secret := trader.CreateTag("s-trader")
	e := trader.CreateEvent()
	must(trader.AddPart(e, labels.EmptySet, labels.EmptySet, "type", "order"))
	must(trader.AddPart(e, labels.EmptySet, labels.EmptySet, "audit_grant", secret))
	for _, r := range []priv.Right{priv.Plus, priv.Minus} {
		must(trader.AttachPrivilegeToPart(e, "audit_grant", labels.EmptySet, labels.EmptySet, secret, r))
	}
	details := freeze.MapOf("symbol", "MSFT", "qty", int64(500), "side", "buy")
	must(trader.AddPart(e, labels.NewSet(secret), labels.EmptySet, "details", details))
	must(trader.Publish(e))
	fmt.Println("london trader published a protected order")

	// Analytics: sees the event (public type part matched) but not the
	// details.
	got, _, err := analytics.GetEvent()
	if err != nil {
		log.Fatal(err)
	}
	if _, err := analytics.ReadPart(got, "details"); errors.Is(err, core.ErrNoSuchPart) {
		fmt.Println("frankfurt analytics: details invisible (label survived the hop)")
	} else {
		log.Fatal("confidentiality lost in transit!")
	}

	// Auditor: harvests the carried grant, raises, reads.
	agot, _, err := auditor.GetEvent()
	if err != nil {
		log.Fatal(err)
	}
	if _, err := auditor.ReadPart(agot, "audit_grant"); err != nil {
		log.Fatal(err)
	}
	must(auditor.ChangeInLabel(core.Confidentiality, core.Add, secret))
	v, err := auditor.ReadOne(agot, "details")
	if err != nil {
		log.Fatal(err)
	}
	m := v.Data.(*freeze.Map)
	fmt.Printf("frankfurt auditor (with delegated s±): %s %d %s\n",
		m.GetString("side"), m.GetInt("qty"), m.GetString("symbol"))

	// Link accounting.
	time.Sleep(50 * time.Millisecond)
	fmt.Printf("link stats: imported=%d exported=%d dropped=%d\n",
		link.Imported(), link.Exported(), link.Dropped())
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
