// Chinese Wall: the conflict-of-interest policy the paper cites as
// motivation (§1 cites Brewer & Nash [8]: leakage of client data to a
// bank's internal traders "is illegal in most jurisdictions, violating
// rules regarding conflicts of interest").
//
// Two competing clients — two banks in the same conflict class — feed
// deal flow into an advisory firm. Consultant units start on neither
// side of the wall; the first client document a consultant reads
// contaminates it with that client's tag (an explicit, audited label
// raise), and from then on the lattice makes the other client's
// documents unreachable: the consultant cannot shed the contamination
// (no declassification privilege) and cannot raise by the competitor's
// tag (no privilege over it at all). The wall needs no policy engine —
// it is an emergent property of DEFC labels.
//
// Run: go run ./examples/chinesewall
package main

import (
	"errors"
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/dispatch"
	"repro/internal/labels"
	"repro/internal/priv"
	"repro/internal/tags"
)

func main() {
	sys := core.NewSystem(core.Config{Mode: core.LabelsFreeze})
	defer sys.Close()

	// The advisory firm's compliance desk owns both client tags and
	// decides who may be exposed to which side.
	compliance := sys.NewUnit("compliance", core.UnitConfig{})
	bankA := compliance.CreateTag("s-bank-A")
	bankB := compliance.CreateTag("s-bank-B")

	// Each client publishes a deal memo protected by its tag.
	publishMemo := func(tag tags.Tag, name, body string) {
		e := compliance.CreateEvent()
		must(compliance.AddPart(e, labels.EmptySet, labels.EmptySet, "type", "memo"))
		must(compliance.AddPart(e, labels.NewSet(tag), labels.EmptySet, "memo", body))
		must(compliance.AddPart(e, labels.EmptySet, labels.EmptySet, "client", name))
		must(compliance.Publish(e))
	}

	// Consultants receive t+ for BOTH sides of the wall — they are
	// allowed to pick a side — but t− for NEITHER: once contaminated,
	// there is no way back across.
	newConsultant := func(name string) *core.Unit {
		return sys.NewUnit(name, core.UnitConfig{Grants: []priv.Grant{
			{Tag: bankA, Right: priv.Plus},
			{Tag: bankB, Right: priv.Plus},
		}})
	}
	carol := newConsultant("carol")
	dave := newConsultant("dave")
	for _, u := range []*core.Unit{carol, dave} {
		if _, err := u.Subscribe(dispatch.MustFilter(dispatch.PartEq("type", "memo"))); err != nil {
			log.Fatal(err)
		}
	}

	publishMemo(bankA, "bank-A", "A: acquire target T for 4.2B")
	publishMemo(bankB, "bank-B", "B: defend target T against A")

	// Carol picks side A, Dave side B: raising input AND output keeps
	// everything they produce inside their side of the wall (no t−, so
	// an input-only raise — a standing declassification — is refused).
	sideOf := func(u *core.Unit, side tags.Tag) {
		if err := u.ChangeInLabel(core.Confidentiality, core.Add, side); !errors.Is(err, priv.ErrNotAuthorised) {
			log.Fatalf("%s opened a declassifying raise without t-: %v", u.Name(), err)
		}
		must(u.ChangeInOutLabel(core.Confidentiality, core.Add, side))
	}
	sideOf(carol, bankA)
	sideOf(dave, bankB)

	read := func(u *core.Unit, wantVisible bool) {
		e, _, err := u.GetEvent()
		if err != nil {
			log.Fatal(err)
		}
		clientView, _ := u.ReadOne(e, "client")
		v, err := u.ReadOne(e, "memo")
		visible := err == nil
		status := "WALLED OFF"
		if visible {
			status = fmt.Sprintf("reads %q", v.Data)
		}
		fmt.Printf("%-6s | memo of %-7v | %s\n", u.Name(), clientView.Data, status)
		if visible != wantVisible {
			log.Fatalf("wall violated for %s", u.Name())
		}
	}

	// Both memos were delivered to both consultants (the memo part is
	// invisible where the wall forbids it; the public parts matched).
	fmt.Println("after choosing sides:")
	read(carol, true)  // bank-A memo
	read(carol, false) // bank-B memo: walled off
	read(dave, false)  // bank-A memo: walled off
	read(dave, true)   // bank-B memo

	// Crossing attempt: Carol, contaminated by A, tries to move to B's
	// side too — allowed by her t+ grants? Adding B to her labels is
	// permitted (she holds B+), but it only raises her higher: she can
	// then read B memos while everything she emits carries BOTH tags —
	// unreadable by either bank alone. The conflict class is inert.
	must(carol.ChangeInOutLabel(core.Confidentiality, core.Add, bankB))
	e := carol.CreateEvent()
	must(carol.AddPart(e, labels.EmptySet, labels.EmptySet, "advice", "blend of A and B"))
	parts := e.Parts()
	if !parts[0].Label.S.Has(bankA) || !parts[0].Label.S.Has(bankB) {
		log.Fatal("cross-contaminated output escaped a tag")
	}
	fmt.Println("\ncarol crossed the wall deliberately: her output now carries")
	fmt.Println("both client tags — visible to compliance alone, useless to leak.")
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
