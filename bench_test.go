// Package repro's top-level benchmark harness: one benchmark per table
// and figure of the paper's evaluation (§6.2), plus Table 1 API
// micro-benchmarks and ablations of the design choices catalogued in
// DESIGN.md.
//
// The figure benchmarks run reduced sweeps sized for `go test -bench`;
// cmd/defcon-bench runs the full paper-scale sweeps with the same
// runners. Shapes, not absolute numbers, are the reproduction target.
package repro

import (
	"fmt"
	"os"
	"testing"
	"time"

	"repro/internal/baseline"
	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/dispatch"
	"repro/internal/events"
	"repro/internal/freeze"
	"repro/internal/labels"
	"repro/internal/metrics"
	"repro/internal/priv"
	"repro/internal/tags"
	"repro/internal/trading"
	"repro/internal/workload"
)

// TestMain lets benchmark runs host baseline agent subprocesses.
func TestMain(m *testing.M) {
	baseline.MaybeRunAgent()
	os.Exit(m.Run())
}

// benchTraders is the reduced Figure 5–7 x-axis for `go test -bench`.
var benchTraders = []int{100, 400}

// Benchmark_Fig5_Throughput regenerates Figure 5 (DEFCon max event rate
// vs traders, four security modes) at bench scale, reporting events/s
// per point.
func Benchmark_Fig5_Throughput(b *testing.B) {
	for _, mode := range bench.AllModes {
		for _, n := range benchTraders {
			b.Run(fmt.Sprintf("mode=%s/traders=%d", slug(mode), n), func(b *testing.B) {
				res, err := bench.RunFig5(bench.DEFConOpts{
					Traders:  []int{n},
					Modes:    []core.SecurityMode{mode},
					Duration: 400 * time.Millisecond,
				})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(res.Series[0].Points[0].Y, "events/s")
			})
		}
	}
}

// Benchmark_Fig6_Latency regenerates Figure 6 (70th-percentile trade
// latency vs traders), reporting milliseconds per point.
func Benchmark_Fig6_Latency(b *testing.B) {
	for _, mode := range bench.AllModes {
		for _, n := range benchTraders {
			b.Run(fmt.Sprintf("mode=%s/traders=%d", slug(mode), n), func(b *testing.B) {
				res, err := bench.RunFig6(bench.DEFConOpts{
					Traders:      []int{n},
					Modes:        []core.SecurityMode{mode},
					LatencyRate:  4000,
					LatencyTicks: 4000,
				})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(res.Series[0].Points[0].Y, "ms-p70")
			})
		}
	}
}

// Benchmark_Fig7_Memory regenerates Figure 7 (occupied memory vs
// traders), reporting MiB per point.
func Benchmark_Fig7_Memory(b *testing.B) {
	for _, mode := range bench.AllModes {
		for _, n := range benchTraders {
			b.Run(fmt.Sprintf("mode=%s/traders=%d", slug(mode), n), func(b *testing.B) {
				res, err := bench.RunFig7(bench.DEFConOpts{
					Traders:     []int{n},
					Modes:       []core.SecurityMode{mode},
					MemoryTicks: 4000,
					TickCache:   2048,
				})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(res.Series[0].Points[0].Y, "MiB")
			})
		}
	}
}

// Benchmark_Fig8_BaselineThroughput regenerates Figure 8 (baseline max
// event rate vs agent count), reporting events/s per point. Agents run
// as OS processes, as in the paper's one-JVM-per-client deployment.
func Benchmark_Fig8_BaselineThroughput(b *testing.B) {
	for _, n := range []int{2, 5, 10} {
		b.Run(fmt.Sprintf("agents=%d", n), func(b *testing.B) {
			res, err := bench.RunFig8(bench.BaselineOpts{
				ThroughputAgents: []int{n},
				Duration:         400 * time.Millisecond,
			})
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(res.Series[0].Points[0].Y, "events/s")
		})
	}
}

// Benchmark_Fig9_BaselineLatency regenerates Figure 9 (baseline latency
// breakdown vs agent count) at 1,000 events/s, reporting the three
// 70th-percentile contributions in milliseconds.
func Benchmark_Fig9_BaselineLatency(b *testing.B) {
	for _, n := range []int{4, 10} {
		b.Run(fmt.Sprintf("agents=%d", n), func(b *testing.B) {
			res, err := bench.RunFig9(bench.BaselineOpts{
				LatencyAgents: []int{n},
				LatencyRate:   1000,
				LatencyTicks:  1500,
				UniversePairs: 2,
			})
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(res.Series[0].Points[0].Y, "ms-processing")
			b.ReportMetric(res.Series[1].Points[0].Y, "ms-ticks+proc")
			b.ReportMetric(res.Series[2].Points[0].Y, "ms-full")
		})
	}
}

// --- Table 1: API micro-benchmarks -----------------------------------
//
// One benchmark per DEFCon API call, measured on a labels+freeze system
// (the checks are live; the §4 interceptors are benchmarked separately
// in the ablations).

// apiBench builds a system and a unit for API micro-benchmarks.
func apiBench(b *testing.B, mode core.SecurityMode) (*core.System, *core.Unit) {
	b.Helper()
	sys := core.NewSystem(core.Config{Mode: mode, Seed: 1, Enforcer: bench.SharedEnforcer()})
	b.Cleanup(sys.Close)
	return sys, sys.NewUnit("bench", core.UnitConfig{})
}

func Benchmark_Table1_CreateEvent(b *testing.B) {
	_, u := apiBench(b, core.LabelsFreeze)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = u.CreateEvent()
	}
}

func Benchmark_Table1_AddPart(b *testing.B) {
	_, u := apiBench(b, core.LabelsFreeze)
	tg := u.CreateTag("t")
	s := labels.NewSet(tg)
	e := u.CreateEvent()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := u.AddPart(e, s, labels.EmptySet, "p", "v"); err != nil {
			b.Fatal(err)
		}
	}
}

func Benchmark_Table1_ReadPart(b *testing.B) {
	_, u := apiBench(b, core.LabelsFreeze)
	e := u.CreateEvent()
	if err := u.AddPart(e, labels.EmptySet, labels.EmptySet, "p",
		freeze.MapOf("k", "v")); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := u.ReadPart(e, "p"); err != nil {
			b.Fatal(err)
		}
	}
}

func Benchmark_Table1_DelPart(b *testing.B) {
	_, u := apiBench(b, core.LabelsFreeze)
	e := u.CreateEvent()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		if err := u.AddPart(e, labels.EmptySet, labels.EmptySet, "p", "v"); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		if err := u.DelPart(e, labels.EmptySet, labels.EmptySet, "p"); err != nil {
			b.Fatal(err)
		}
	}
}

func Benchmark_Table1_AttachPrivilegeToPart(b *testing.B) {
	_, u := apiBench(b, core.LabelsFreeze)
	tg := u.CreateTag("t")
	e := u.CreateEvent()
	if err := u.AddPart(e, labels.EmptySet, labels.EmptySet, "p", "v"); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := u.AttachPrivilegeToPart(e, "p", labels.EmptySet, labels.EmptySet, tg, priv.Plus); err != nil {
			b.Fatal(err)
		}
	}
}

func Benchmark_Table1_CloneEvent(b *testing.B) {
	_, u := apiBench(b, core.LabelsFreeze)
	e := u.CreateEvent()
	for i := 0; i < 3; i++ {
		if err := u.AddPart(e, labels.EmptySet, labels.EmptySet,
			fmt.Sprintf("p%d", i), freeze.MapOf("k", int64(i))); err != nil {
			b.Fatal(err)
		}
	}
	if err := u.Publish(e); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := u.CloneEvent(e, labels.EmptySet, labels.EmptySet); err != nil {
			b.Fatal(err)
		}
	}
}

func Benchmark_Table1_Publish_OneSubscriber(b *testing.B) {
	sys, u := apiBench(b, core.LabelsFreeze)
	subU := sys.NewUnit("sub", core.UnitConfig{})
	if _, err := subU.Subscribe(dispatch.MustFilter(dispatch.PartEq("type", "x"))); err != nil {
		b.Fatal(err)
	}
	// Drain continuously so queues never exert backpressure.
	sys.Go(func() {
		for {
			if _, _, err := subU.GetEvent(); err != nil {
				return
			}
		}
	})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := u.CreateEvent()
		if err := u.AddPart(e, labels.EmptySet, labels.EmptySet, "type", "x"); err != nil {
			b.Fatal(err)
		}
		if err := u.Publish(e); err != nil {
			b.Fatal(err)
		}
	}
}

func Benchmark_Table1_Subscribe(b *testing.B) {
	_, u := apiBench(b, core.LabelsFreeze)
	f := dispatch.MustFilter(dispatch.PartEq("type", "x"))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id, err := u.Subscribe(f)
		if err != nil {
			b.Fatal(err)
		}
		u.Unsubscribe(id)
	}
}

func Benchmark_Table1_SubscribeManaged_Delivery(b *testing.B) {
	sys, u := apiBench(b, core.LabelsFreeze)
	handled := make(chan struct{}, 1024)
	mgr := sys.NewUnit("mgr", core.UnitConfig{})
	if _, err := mgr.SubscribeManaged(func(mu *core.Unit, e *events.Event, sub uint64) {
		handled <- struct{}{}
	}, dispatch.MustFilter(dispatch.PartEq("type", "m"))); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := u.CreateEvent()
		if err := u.AddPart(e, labels.EmptySet, labels.EmptySet, "type", "m"); err != nil {
			b.Fatal(err)
		}
		if err := u.Publish(e); err != nil {
			b.Fatal(err)
		}
		<-handled
	}
}

func Benchmark_Table1_GetEvent_RoundTrip(b *testing.B) {
	sys, u := apiBench(b, core.LabelsFreeze)
	subU := sys.NewUnit("sub", core.UnitConfig{})
	if _, err := subU.Subscribe(dispatch.MustFilter(dispatch.PartEq("type", "x"))); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := u.CreateEvent()
		if err := u.AddPart(e, labels.EmptySet, labels.EmptySet, "type", "x"); err != nil {
			b.Fatal(err)
		}
		if err := u.Publish(e); err != nil {
			b.Fatal(err)
		}
		if _, _, err := subU.GetEvent(); err != nil {
			b.Fatal(err)
		}
	}
}

func Benchmark_Table1_Release_Redispatch(b *testing.B) {
	sys, u := apiBench(b, core.LabelsFreeze)
	aug := sys.NewUnit("aug", core.UnitConfig{})
	if _, err := aug.Subscribe(dispatch.MustFilter(dispatch.PartEq("type", "x"))); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := u.CreateEvent()
		if err := u.AddPart(e, labels.EmptySet, labels.EmptySet, "type", "x"); err != nil {
			b.Fatal(err)
		}
		if err := u.Publish(e); err != nil {
			b.Fatal(err)
		}
		got, _, err := aug.GetEvent()
		if err != nil {
			b.Fatal(err)
		}
		if err := aug.AddPart(got, labels.EmptySet, labels.EmptySet, "extra", int64(i)); err != nil {
			b.Fatal(err)
		}
		if err := aug.Release(got); err != nil {
			b.Fatal(err)
		}
	}
}

func Benchmark_Table1_ChangeInOutLabel(b *testing.B) {
	_, u := apiBench(b, core.LabelsFreeze)
	tg := u.CreateTag("t")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := u.ChangeInOutLabel(core.Confidentiality, core.Add, tg); err != nil {
			b.Fatal(err)
		}
		if err := u.ChangeInOutLabel(core.Confidentiality, core.Del, tg); err != nil {
			b.Fatal(err)
		}
	}
}

func Benchmark_Table1_CreateTag(b *testing.B) {
	_, u := apiBench(b, core.LabelsFreeze)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = u.CreateTag("t")
	}
}

func Benchmark_Table1_InstantiateUnit(b *testing.B) {
	_, u := apiBench(b, core.LabelsFreeze)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		child, err := u.InstantiateUnit("child", labels.EmptySet, labels.EmptySet, nil, nil)
		if err != nil {
			b.Fatal(err)
		}
		child.Terminate()
	}
}

// --- Ablations --------------------------------------------------------

// Benchmark_Ablation_FreezeVsClone quantifies the Figure 5 gap between
// zero-copy frozen sharing and per-delivery deep copies: one publish
// fanning out to 8 subscribers with a realistic map payload.
func Benchmark_Ablation_FreezeVsClone(b *testing.B) {
	for _, mode := range []core.SecurityMode{core.LabelsFreeze, core.LabelsClone} {
		b.Run(slug(mode), func(b *testing.B) {
			sys, u := apiBench(b, mode)
			for i := 0; i < 8; i++ {
				subU := sys.NewUnit(fmt.Sprintf("sub%d", i), core.UnitConfig{})
				if _, err := subU.Subscribe(dispatch.MustFilter(dispatch.PartEq("type", "x"))); err != nil {
					b.Fatal(err)
				}
				sys.Go(func() {
					for {
						if _, _, err := subU.GetEvent(); err != nil {
							return
						}
					}
				})
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				e := u.CreateEvent()
				if err := u.AddPart(e, labels.EmptySet, labels.EmptySet, "type", "x"); err != nil {
					b.Fatal(err)
				}
				if err := u.AddPart(e, labels.EmptySet, labels.EmptySet, "body",
					freeze.MapOf("symbol", "MSFT", "price", int64(1234), "qty", int64(100))); err != nil {
					b.Fatal(err)
				}
				if err := u.Publish(e); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// Benchmark_Ablation_InterceptorTax measures the woven §4 interceptors'
// per-API-call cost in isolation (the labels+freeze+isolation vs
// labels+freeze gap of Figures 5–6). With the compiled interceptor
// plan this is the memoized warm pass — the steady-state cost every
// Table 1 call pays; the cold (first-traversal) cost is measured by
// BenchmarkAPITaxCold in internal/isolation.
func Benchmark_Ablation_InterceptorTax(b *testing.B) {
	enf := bench.SharedEnforcer()
	iso := enf.NewIsolate("bench")
	enf.APITax(iso) // prime: the cold pass fills the replica slots
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		enf.APITax(iso)
	}
}

// Benchmark_Ablation_LabelCheck measures one can-flow-to admission with
// realistic label sizes (the per-part cost of the labels+freeze mode).
func Benchmark_Ablation_LabelCheck(b *testing.B) {
	st := metricsTagStore()
	part := labels.Label{S: labels.NewSet(st[0], st[1]), I: labels.NewSet(st[2])}
	in := labels.Label{S: labels.NewSet(st[0], st[1], st[3], st[4]), I: labels.NewSet(st[2])}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !part.CanFlowTo(in) {
			b.Fatal("label check failed")
		}
	}
}

// Benchmark_Ablation_DispatchIndexVsScan contrasts the equality-indexed
// subscription path against a pure scan list at 1,000 subscriptions —
// the centralised-filtering design DESIGN.md calls out.
func Benchmark_Ablation_DispatchIndexVsScan(b *testing.B) {
	build := func(indexable bool) (*core.System, *core.Unit) {
		sys := core.NewSystem(core.Config{Mode: core.LabelsFreeze})
		b.Cleanup(sys.Close)
		for i := 0; i < 1000; i++ {
			subU := sys.NewUnit(fmt.Sprintf("s%d", i), core.UnitConfig{})
			var f *dispatch.Filter
			if indexable {
				f = dispatch.MustFilter(dispatch.PartEq("sym", fmt.Sprintf("S%04d", i)))
			} else {
				f = dispatch.MustFilter(dispatch.Cond{
					Part: "sym", Op: dispatch.Prefix, Value: fmt.Sprintf("S%04d", i),
				})
			}
			if _, err := subU.Subscribe(f); err != nil {
				b.Fatal(err)
			}
			sys.Go(func() {
				for {
					if _, _, err := subU.GetEvent(); err != nil {
						return
					}
				}
			})
		}
		return sys, sys.NewUnit("pub", core.UnitConfig{})
	}
	for _, mode := range []string{"indexed", "scan"} {
		mode := mode
		b.Run(mode, func(b *testing.B) {
			_, u := build(mode == "indexed")
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				e := u.CreateEvent()
				if err := u.AddPart(e, labels.EmptySet, labels.EmptySet, "sym",
					fmt.Sprintf("S%04d", i%1000)); err != nil {
					b.Fatal(err)
				}
				if err := u.Publish(e); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// Benchmark_Ablation_EndToEndTick measures one tick's full journey at a
// small platform (exchange → monitors → traders), the unit of work
// behind Figure 5.
func Benchmark_Ablation_EndToEndTick(b *testing.B) {
	for _, mode := range bench.AllModes {
		b.Run(slug(mode), func(b *testing.B) {
			p, err := trading.New(trading.Config{
				Mode:       mode,
				NumTraders: 16,
				Seed:       1,
				Enforcer:   bench.SharedEnforcer(),
			})
			if err != nil {
				b.Fatal(err)
			}
			b.Cleanup(p.Close)
			trace := workload.NewTrace(p.Universe(), 3)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tk := trace.Next()
				p.Exchange.PublishTick(&tk)
			}
			b.StopTimer()
			p.Quiesce(10 * time.Second)
		})
	}
}

// Benchmark_Ablation_HistogramRecord measures the measurement plumbing
// itself, guarding against observer overhead in the figure numbers.
func Benchmark_Ablation_HistogramRecord(b *testing.B) {
	h := metrics.NewHistogram()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Record(int64(i))
	}
}

// --- helpers ----------------------------------------------------------

func slug(m core.SecurityMode) string {
	switch m {
	case core.NoSecurity:
		return "nosec"
	case core.LabelsFreeze:
		return "freeze"
	case core.LabelsClone:
		return "clone"
	case core.LabelsFreezeIsolation:
		return "isolation"
	default:
		return "unknown"
	}
}

// metricsTagStore mints a small deterministic tag pool.
func metricsTagStore() []tags.Tag {
	sys := core.NewSystem(core.Config{Mode: core.LabelsFreeze})
	defer sys.Close()
	u := sys.NewUnit("pool", core.UnitConfig{})
	out := make([]tags.Tag, 6)
	for i := range out {
		out[i] = u.CreateTag(fmt.Sprintf("t%d", i))
	}
	return out
}
