// Command defcon-trading runs the paper's stock-trading platform
// (§6.1) end to end and reports what happened: ticks, matches, orders,
// dark-pool trades, audits and quota warnings — the observable outcome
// of the Figure 4 choreography.
//
// Example:
//
//	defcon-trading -traders 100 -ticks 50000 -mode isolation
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/orderbook"
	"repro/internal/trading"
	"repro/internal/workload"
)

func main() {
	var (
		traders = flag.Int("traders", 50, "number of traders")
		ticks   = flag.Int("ticks", 20000, "ticks to replay")
		rate    = flag.Float64("rate", 0, "offered tick rate (0 = as fast as possible)")
		mode    = flag.String("mode", "isolation", "security mode: none|freeze|clone|isolation")
		quota   = flag.Int64("quota", 2000, "per-trader volume quota (shares)")
		shards  = flag.Int("shards", 0, "broker pool size (0 = GOMAXPROCS-scaled)")
		stp     = flag.String("stp", "off", "self-trade prevention: off|cancel-resting|cancel-incoming")
	)
	flag.Parse()

	var m core.SecurityMode
	switch *mode {
	case "none":
		m = core.NoSecurity
	case "freeze":
		m = core.LabelsFreeze
	case "clone":
		m = core.LabelsClone
	case "isolation":
		m = core.LabelsFreezeIsolation
	default:
		fmt.Fprintf(os.Stderr, "unknown mode %q\n", *mode)
		os.Exit(2)
	}
	var policy orderbook.STP
	switch *stp {
	case "off":
		policy = orderbook.STPAllow
	case "cancel-resting":
		policy = orderbook.STPCancelResting
	case "cancel-incoming":
		policy = orderbook.STPCancelIncoming
	default:
		fmt.Fprintf(os.Stderr, "unknown self-trade policy %q\n", *stp)
		os.Exit(2)
	}

	lat := metrics.NewHistogram()
	p, err := trading.New(trading.Config{
		Mode:            m,
		NumTraders:      *traders,
		QuotaShares:     *quota,
		BrokerShards:    *shards,
		SelfTradePolicy: policy,
		// Histogram.Record is atomic, so the hook needs no extra lock
		// even though shards invoke it concurrently.
		OnTrade: func(ns int64) { lat.Record(ns) },
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer p.Close()

	fmt.Printf("DEFCon trading platform: %d traders, mode %v, %d pairs, %d broker shard(s)\n",
		*traders, m, p.Universe().PairsFor(), p.BrokerShards())

	trace := workload.NewTrace(p.Universe(), 42)
	start := time.Now()
	if *rate > 0 {
		p.ReplayPaced(trace.Take(*ticks), *rate)
	} else {
		p.Replay(trace.Take(*ticks))
	}
	elapsed := time.Since(start)
	p.Quiesce(10 * time.Second)

	st := p.Stats()
	fmt.Printf("\nreplayed %d ticks in %v (%.0f events/s)\n",
		st.TicksPublished, elapsed.Round(time.Millisecond),
		float64(st.TicksPublished)/elapsed.Seconds())
	fmt.Printf("  matches emitted:    %d\n", st.MatchesEmitted)
	fmt.Printf("  orders placed:      %d\n", st.OrdersPlaced)
	fmt.Printf("  trades completed:   %d\n", st.TradesCompleted)
	if st.SelfTradeCancels > 0 {
		fmt.Printf("  self-trade cancels: %d\n", st.SelfTradeCancels)
	}
	fmt.Printf("  audits requested:   %d\n", st.AuditsRequested)
	for _, sh := range p.Broker.Shards() {
		if sh.Trades() == 0 {
			continue
		}
		fmt.Printf("    shard %d:          %d trades, %d books\n",
			sh.Shard(), sh.Trades(), len(sh.BookDepths()))
	}
	fmt.Printf("  warnings delivered: %d\n", st.WarningsReceived)
	fmt.Printf("  trade latency:      %s\n", lat.Snapshot())
	fmt.Printf("  heap in use:        %.1f MiB\n", metrics.HeapInUseMiB())

	ds := p.Sys.DispatchStats()
	fmt.Printf("  dispatcher:         %d published, %d deliveries, %d redispatches\n",
		ds.Published, ds.Deliveries, ds.Redispatches)
}
