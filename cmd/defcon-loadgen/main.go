// Command defcon-loadgen drives a running defcon-gateway: N client
// sessions authenticate with trader tokens and replay deterministic
// workload traces through the wire protocol, reconnecting with capped
// exponential backoff (plus jitter) and sequence resync when
// connections drop. The exit ledger proves no order was silently
// lost: every op is acked, labeled-rejected, or reported unsent.
//
//	defcon-loadgen -addr localhost:7450 -sessions 64 -ops 1000
package main

import (
	"flag"
	"fmt"
	"os"
	"sync"
	"time"

	"repro/internal/gateway"
	"repro/internal/trading"
	"repro/internal/workload"
)

func main() {
	var (
		addr     = flag.String("addr", "127.0.0.1:7450", "gateway address")
		sessions = flag.Int("sessions", 8, "concurrent client sessions (session i authenticates as trader-000i)")
		ops      = flag.Int("ops", 500, "orders per session")
		pairs    = flag.Int("pairs", 2, "symbol-pair universe size (must match the gateway's)")
		seed     = flag.Int64("seed", 1, "workload trace seed")
		attempts = flag.Int("attempts", 8, "max consecutive failed dials before a session gives up")
		backoff  = flag.Duration("backoff", 10*time.Millisecond, "base reconnect backoff (doubles per failure, jittered)")
		maxBack  = flag.Duration("max-backoff", time.Second, "reconnect backoff cap")
	)
	flag.Parse()

	u := workload.NewUniverse(*pairs)
	var wg sync.WaitGroup
	clients := make([]*gateway.Client, *sessions)
	errs := make([]error, *sessions)
	start := time.Now()
	for i := 0; i < *sessions; i++ {
		flow := workload.NewOrderFlow(u, workload.FlowConfig{Traders: 1, AggressionPct: 55}, *seed+int64(i)*101)
		trace := workload.OffsetOrderIDs(flow.Take(*ops), int64(i+1)<<24)
		clients[i] = gateway.NewClient(gateway.ClientConfig{
			Addr:        *addr,
			Token:       trading.TraderToken(i),
			Seed:        *seed + int64(i),
			MaxAttempts: *attempts,
			BaseBackoff: *backoff,
			MaxBackoff:  *maxBack,
		})
		wg.Add(1)
		go func(i int, trace []workload.OrderOp) {
			defer wg.Done()
			errs[i] = clients[i].Run(trace)
		}(i, trace)
	}
	wg.Wait()
	elapsed := time.Since(start)

	var acked, rejected, unsent, reconnects uint64
	failed := 0
	for i, cl := range clients {
		st := cl.Stats()
		acked += st.Acked
		rejected += st.Rejected
		unsent += st.Unsent
		reconnects += st.Reconnects
		if errs[i] != nil {
			failed++
			fmt.Fprintf(os.Stderr, "defcon-loadgen: session %d: %v\n", i, errs[i])
		}
	}
	total := uint64(*sessions) * uint64(*ops)
	fmt.Fprintf(os.Stderr,
		"defcon-loadgen: %d sessions × %d ops in %v — acked=%d rejected=%d unsent=%d reconnects=%d (%.0f orders/s)\n",
		*sessions, *ops, elapsed.Round(time.Millisecond),
		acked, rejected, unsent, reconnects,
		float64(acked+rejected)/elapsed.Seconds())
	if acked+rejected+unsent != total {
		fmt.Fprintf(os.Stderr, "defcon-loadgen: LEDGER LEAK: %d+%d+%d != %d\n", acked, rejected, unsent, total)
		os.Exit(1)
	}
	if failed > 0 || unsent > 0 {
		os.Exit(1)
	}
}
