// Command defcon-bench regenerates the paper's evaluation figures
// (§6.2) at configurable scale and prints each as an aligned table.
//
// Examples:
//
//	defcon-bench -fig 5                          # paper-scale Figure 5
//	defcon-bench -fig 6 -traders 200,400,800     # custom sweep
//	defcon-bench -fig 8 -agents 2,5,10,20        # baseline throughput
//	defcon-bench -fig 9 -inprocess               # serialisation-only ablation
//	defcon-bench -fig ob -ops 50000              # order-book fill rate
//	defcon-bench -fig obshard -shards 1,2,4,8    # pool shard scaling
//	defcon-bench -fig rebalance -ops 20000       # live hand-off cost
//	defcon-bench -fig planner -ops 12000         # planner off vs on, skewed flow
//	defcon-bench -fig mdfeed -subs 100,1000,10000 # market-data fanout
//	defcon-bench -fig gateway -sessions 100,1000  # socket ingress sweep
//	defcon-bench -analysis                       # §4.2 pipeline counts
//	defcon-bench -fig all -quick                 # fast smoke of everything
//
// Baseline figures spawn one OS process per Strategy Agent by re-
// executing this binary; no set-up is needed beyond building it.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/baseline"
	"repro/internal/bench"
)

func main() {
	baseline.MaybeRunAgent() // never returns in agent mode

	var (
		fig       = flag.String("fig", "all", "figure to regenerate: 5,6,7,8,9,ob,objournal,obshard,rebalance,planner,mdfeed,gateway or all")
		traders   = flag.String("traders", "", "comma-separated trader counts (figures 5-7 and ob)")
		shards    = flag.String("shards", "", "comma-separated broker shard counts (figure obshard)")
		subs      = flag.String("subs", "", "comma-separated subscriber counts (figure mdfeed)")
		sessions  = flag.String("sessions", "", "comma-separated session counts (figure gateway)")
		agents    = flag.String("agents", "", "comma-separated agent counts (figures 8-9)")
		duration  = flag.Duration("duration", 2*time.Second, "measurement duration per throughput point")
		rate      = flag.Float64("rate", 0, "offered tick rate for latency figures (0 = default)")
		ops       = flag.Int("ops", 0, "order-flow length per order-book point (0 = default)")
		inprocess = flag.Bool("inprocess", false, "host baseline agents on goroutines instead of processes")
		quick     = flag.Bool("quick", false, "small fast sweep (smoke test scale)")
		analysis  = flag.Bool("analysis", false, "print the §4.2 isolation-analysis report")
	)
	flag.Parse()

	if *analysis {
		fmt.Println("# §4.2 static analysis pipeline (synthetic OpenJDK 6 model)")
		fmt.Print(bench.AnalysisReport())
		if *fig == "all" {
			return
		}
	}

	dopts := bench.DEFConOpts{Duration: *duration}
	bopts := bench.BaselineOpts{Duration: *duration}
	oopts := bench.OrderBookOpts{Ops: *ops}
	jopts := bench.OrderBookJournalOpts{Ops: *ops}
	sopts := bench.OrderBookShardOpts{Ops: *ops}
	ropts := bench.RebalanceOpts{Ops: *ops}
	popts := bench.PlannerOpts{Ops: *ops}
	mopts := bench.MDFeedOpts{Ops: *ops}
	gopts := bench.GatewayOpts{}
	if *rate > 0 {
		dopts.LatencyRate = *rate
		bopts.LatencyRate = *rate
	}
	if *traders != "" {
		dopts.Traders = parseInts(*traders)
		oopts.Traders = parseInts(*traders)
		jopts.Traders = parseInts(*traders)
	}
	if *shards != "" {
		sopts.Shards = parseInts(*shards)
	}
	if *subs != "" {
		mopts.Subscribers = parseInts(*subs)
	}
	if *sessions != "" {
		gopts.Sessions = parseInts(*sessions)
	}
	if *agents != "" {
		bopts.ThroughputAgents = parseInts(*agents)
		bopts.LatencyAgents = parseInts(*agents)
	}
	if *inprocess {
		bopts.Mode = baseline.InProcess
	}
	if *quick {
		dopts.Traders = []int{50, 100, 200}
		dopts.Duration = 500 * time.Millisecond
		dopts.LatencyTicks = 2000
		dopts.MemoryTicks = 5000
		bopts.ThroughputAgents = []int{2, 5, 10}
		bopts.LatencyAgents = []int{5, 10, 20}
		bopts.Duration = 500 * time.Millisecond
		bopts.LatencyTicks = 1000
		oopts.Traders = []int{16, 32}
		oopts.Ops = 8000
		jopts.Traders = []int{16}
		jopts.Ops = 6000
		if *shards == "" {
			sopts.Shards = []int{1, 2}
		}
		sopts.Ops = 12000
		ropts.Ops = 5000
		ropts.Traders = 16
		ropts.Pairs = 4
		popts.Ops = 4000
		popts.Traders = 16
		popts.Pairs = 4
		popts.Shards = 2
		if *subs == "" {
			mopts.Subscribers = []int{16, 64}
		}
		mopts.Ops = 2000
		mopts.Traders = 8
		if *sessions == "" {
			gopts.Sessions = []int{8, 32}
		}
		gopts.OpsPerSession = 30
	}

	want := func(n string) bool { return *fig == "all" || *fig == n }
	type runner struct {
		name string
		run  func() (bench.Result, error)
	}
	runners := []runner{
		{"5", func() (bench.Result, error) { return bench.RunFig5(dopts) }},
		{"6", func() (bench.Result, error) { return bench.RunFig6(dopts) }},
		{"7", func() (bench.Result, error) { return bench.RunFig7(dopts) }},
		{"8", func() (bench.Result, error) { return bench.RunFig8(bopts) }},
		{"9", func() (bench.Result, error) { return bench.RunFig9(bopts) }},
		{"ob", func() (bench.Result, error) { return bench.RunOrderBook(oopts) }},
		{"objournal", func() (bench.Result, error) { return bench.RunOrderBookJournal(jopts) }},
		{"obshard", func() (bench.Result, error) { return bench.RunOrderBookShards(sopts) }},
		{"rebalance", func() (bench.Result, error) { return bench.RunRebalance(ropts) }},
		{"planner", func() (bench.Result, error) { return bench.RunPlanner(popts) }},
		{"mdfeed", func() (bench.Result, error) { return bench.RunMDFeed(mopts) }},
		{"gateway", func() (bench.Result, error) { return bench.RunGateway(gopts) }},
	}
	ran := false
	for _, r := range runners {
		if !want(r.name) {
			continue
		}
		ran = true
		res, err := r.run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "figure %s: %v\n", r.name, err)
			os.Exit(1)
		}
		fmt.Println(res.Format())
	}
	if !ran {
		fmt.Fprintf(os.Stderr, "unknown figure %q (want 5,6,7,8,9,ob,objournal,obshard,rebalance,planner,mdfeed,gateway or all)\n", *fig)
		os.Exit(2)
	}
}

// parseInts parses "200,400,600".
func parseInts(s string) []int {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		n, err := strconv.Atoi(part)
		if err != nil || n <= 0 {
			fmt.Fprintf(os.Stderr, "bad count %q\n", part)
			os.Exit(2)
		}
		out = append(out, n)
	}
	return out
}
