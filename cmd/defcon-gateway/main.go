// Command defcon-gateway runs the dark pool behind a real TCP ingress
// gateway: sessions authenticate with trader tokens, speak the framed
// binary order protocol, and are admission-controlled (token-bucket
// rate limits, bounded ingress queues that shed to labeled reject
// events, idle and slow-writer eviction). SIGINT/SIGTERM drains
// gracefully: in-flight admitted orders flush, the rest are refused
// with drain rejects, and the platform settles before exit.
//
//	defcon-gateway -addr :7450 -mode labels+freeze -traders 64
//	defcon-loadgen -addr localhost:7450 -sessions 64 -ops 1000
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/gateway"
	"repro/internal/trading"
	"repro/internal/workload"
)

func main() {
	var (
		addr     = flag.String("addr", "127.0.0.1:7450", "listen address")
		mode     = flag.String("mode", "labels+freeze", "security mode: none, labels+freeze, labels+clone, labels+freeze+isolation")
		traders  = flag.Int("traders", 64, "trader population (token trader-0000 … trader-NNNN)")
		pairs    = flag.Int("pairs", 2, "symbol-pair universe size")
		rate     = flag.Float64("rate", 0, "per-session sustained orders/s admitted (0 = unlimited)")
		burst    = flag.Int("burst", 0, "per-session admission burst (0 = rate)")
		ingressQ = flag.Int("ingress-queue", 256, "per-session bounded ingress queue (overflow sheds)")
		maxSess  = flag.Int("max-sessions", 0, "concurrent session cap (0 = unlimited)")
		idle     = flag.Duration("idle", 30*time.Second, "idle session timeout")
		stats    = flag.Duration("stats", 10*time.Second, "stats print interval (0 = quiet)")
	)
	flag.Parse()

	m, err := parseMode(*mode)
	if err != nil {
		fatal(err)
	}
	p, err := trading.New(trading.Config{
		Mode:       m,
		NumTraders: *traders,
		Universe:   workload.NewUniverse(*pairs),
		Seed:       1,
		QueueCap:   4096,
		OrderTTL:   time.Minute,
	})
	if err != nil {
		fatal(err)
	}
	ingress := p.NewIngress()
	g := gateway.New(gateway.Config{
		Backend:      ingress,
		Rate:         *rate,
		Burst:        *burst,
		IngressQueue: *ingressQ,
		MaxSessions:  *maxSess,
		IdleTimeout:  *idle,
	})
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "defcon-gateway: %s mode on %s, %d traders\n", m, ln.Addr(), *traders)

	if *stats > 0 {
		go func() {
			for range time.Tick(*stats) {
				st := g.Stats()
				fmt.Fprintf(os.Stderr,
					"defcon-gateway: active=%d received=%d admitted=%d shed=%d dup=%d trades=%d\n",
					st.Active, st.OrdersReceived, st.Admitted,
					st.RateRejects+st.OverflowRejects+st.DrainRejects, st.DupOrders,
					p.Broker.Trades())
			}
		}()
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	serveErr := make(chan error, 1)
	go func() { serveErr <- g.Serve(ln) }()

	select {
	case err := <-serveErr:
		fatal(err)
	case s := <-sig:
		fmt.Fprintf(os.Stderr, "defcon-gateway: %v, draining\n", s)
	}
	if err := g.Close(); err != nil {
		fatal(err)
	}
	if !p.Quiesce(30 * time.Second) {
		fatal(fmt.Errorf("platform did not quiesce"))
	}
	st := g.Stats()
	fmt.Fprintf(os.Stderr,
		"defcon-gateway: drained — received=%d admitted=%d shed=%d dup=%d labeled-rejects=%d trades=%d\n",
		st.OrdersReceived, st.Admitted,
		st.RateRejects+st.OverflowRejects+st.DrainRejects, st.DupOrders,
		ingress.Rejects(), p.Broker.Trades())
	if err := p.Broker.CheckConservation(); err != nil {
		fatal(err)
	}
	p.Close()
}

func parseMode(s string) (core.SecurityMode, error) {
	switch s {
	case "none", "nosec", "no-security":
		return core.NoSecurity, nil
	case "labels+freeze", "freeze":
		return core.LabelsFreeze, nil
	case "labels+clone", "clone":
		return core.LabelsClone, nil
	case "labels+freeze+isolation", "isolation":
		return core.LabelsFreezeIsolation, nil
	default:
		return 0, fmt.Errorf("unknown mode %q", s)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "defcon-gateway:", err)
	os.Exit(1)
}
