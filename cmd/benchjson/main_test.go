package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// parseTable runs parseFigure over a literal defcon-bench table.
func parseTable(t *testing.T, table string) (string, []FigPoint) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "fig.txt")
	if err := os.WriteFile(path, []byte(table), 0o644); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	figure, points, err := parseFigure(f)
	if err != nil {
		t.Fatal(err)
	}
	return figure, points
}

// TestParsePlannerTable: the planner off/on table — series names with
// an embedded single space ("no-sec off") separated by 2+-space runs —
// round-trips through the figure parser.
func TestParsePlannerTable(t *testing.T) {
	figure, points := parseTable(t, ""+
		"# Load-aware rebalancing planner — planner off vs on\n"+
		"x      no-sec off     no-sec on     l+f off     l+f on   (fills/s)\n"+
		"0         23837.74      21707.74    21165.90   16523.92\n"+
		"1         18641.18      29576.86    17178.33   22535.73\n"+
		"2         32281.49      32778.23    23677.09   21979.90\n")
	if !strings.Contains(figure, "planner") {
		t.Fatalf("figure title lost: %q", figure)
	}
	if len(points) != 3 {
		t.Fatalf("parsed %d points, want 3", len(points))
	}
	for _, name := range []string{"no-sec off", "no-sec on", "l+f off", "l+f on"} {
		v, ok := points[1].Series[name]
		if !ok {
			t.Fatalf("series %q missing from x=1: %+v", name, points[1].Series)
		}
		if v <= 0 {
			t.Fatalf("series %q parsed as %v", name, v)
		}
	}
	if got := points[1].Series["no-sec on"]; got != 29576.86 {
		t.Fatalf("no-sec on at x=1 = %v, want 29576.86", got)
	}
	snap := &Snapshot{PlannerPoints: points}
	if err := checkRequired(snap, "", "", "", "", "", "", "", "", "no-sec off,no-sec on"); err != nil {
		t.Fatalf("require-planner-series rejected present series: %v", err)
	}
	if err := checkRequired(snap, "", "", "", "", "", "", "", "", "l+f+iso on"); err == nil {
		t.Fatal("require-planner-series accepted a missing series")
	}
}

// TestFlatShardWarnings: a committed-style flat obshard series (the
// known 1-CPU calibration data shows spreads up to ~21% with no
// scaling behind them) must be flagged with a provenance warning,
// while a genuinely scaling series — and a single-point series, which
// proves nothing either way — must not.
func TestFlatShardWarnings(t *testing.T) {
	pt := func(x int, series map[string]float64) FigPoint {
		return FigPoint{X: x, Series: series}
	}
	// The committed 1-CPU numbers for "labels+freeze+isolation":
	// 16837.59 / 21328.40 / 18290.84 at x=1/2/4 — a 1.27 spread would
	// escape a tight threshold; the loose one catches the 1.21 below
	// and the near-equal series.
	flat := []FigPoint{
		pt(1, map[string]float64{"l+f": 17600.0, "steady": 10000}),
		pt(2, map[string]float64{"l+f": 21328.4, "steady": 10100}),
		pt(4, map[string]float64{"l+f": 18290.8, "steady": 10050}),
	}
	warns := flatShardWarnings(flat)
	if len(warns) != 2 {
		t.Fatalf("flat series produced %d warnings, want 2: %v", len(warns), warns)
	}
	for _, w := range warns {
		if !strings.Contains(w, "flat") || !strings.Contains(w, "single-CPU") {
			t.Fatalf("warning lacks provenance wording: %q", w)
		}
	}

	scaling := []FigPoint{
		pt(1, map[string]float64{"l+f": 10000}),
		pt(2, map[string]float64{"l+f": 17000}),
		pt(4, map[string]float64{"l+f": 26000}),
	}
	if warns := flatShardWarnings(scaling); len(warns) != 0 {
		t.Fatalf("scaling series flagged flat: %v", warns)
	}

	single := []FigPoint{pt(1, map[string]float64{"l+f": 10000})}
	if warns := flatShardWarnings(single); len(warns) != 0 {
		t.Fatalf("single-point series flagged: %v", warns)
	}

	if warns := flatShardWarnings(nil); warns != nil {
		t.Fatalf("no points produced warnings: %v", warns)
	}

	// Mixed: only the flat series is named.
	mixed := []FigPoint{
		pt(1, map[string]float64{"fast": 10000, "stuck": 9000}),
		pt(4, map[string]float64{"fast": 30000, "stuck": 9100}),
	}
	warns = flatShardWarnings(mixed)
	if len(warns) != 1 || !strings.Contains(warns[0], `"stuck"`) {
		t.Fatalf("mixed series warnings wrong: %v", warns)
	}
}

// TestBenchMatchesExact pins the exact-name semantics of -require: a
// surviving sibling must not satisfy a dropped benchmark.
func TestBenchMatchesExact(t *testing.T) {
	cases := []struct {
		name, want string
		ok         bool
	}{
		{"BenchmarkAPITaxWarm-8", "APITaxWarm", true},
		{"BenchmarkAPITaxWarmBatch-8", "APITaxWarm", false},
		{"BenchmarkPublish/labels-8", "Publish", true},
		{"BenchmarkPublish-8", "BenchmarkPublish", true},
	}
	for _, c := range cases {
		if got := benchMatches(c.name, c.want); got != c.ok {
			t.Errorf("benchMatches(%q, %q) = %v, want %v", c.name, c.want, got, c.ok)
		}
	}
}
