// Command benchjson converts `go test -bench` output (and optionally
// figure tables produced by defcon-bench) into a machine-readable
// JSON snapshot. CI's bench-snapshot job runs it to emit
// BENCH_dispatch.json, which is uploaded as an artifact so the perf
// trajectory of the dispatch pipeline is tracked per commit.
//
//	go test ./internal/dispatch -run xxx -bench . -benchmem | tee bench.txt
//	defcon-bench -fig 5 -quick | tee fig5.txt
//	defcon-bench -fig ob -quick | tee figob.txt
//	defcon-bench -fig obshard -shards 1,2 | tee figobshard.txt
//	defcon-bench -fig rebalance -quick | tee figrebalance.txt
//	defcon-bench -fig mdfeed -subs 100,1000 | tee figmdfeed.txt
//	defcon-bench -fig objournal -quick | tee figobjournal.txt
//	defcon-bench -fig gateway -quick | tee figgateway.txt
//	defcon-bench -fig planner -quick | tee figplanner.txt
//	benchjson -bench bench.txt -fig5 fig5.txt -figob figob.txt \
//	  -figobshard figobshard.txt -figrebalance figrebalance.txt \
//	  -figmdfeed figmdfeed.txt -figobjournal figobjournal.txt \
//	  -figgateway figgateway.txt -figplanner figplanner.txt \
//	  -o BENCH_dispatch.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Benchmark is one parsed `go test -bench` result line.
type Benchmark struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"` // unit → value (ns/op, B/op, allocs/op, events/s, ...)
}

// FigPoint is one x-row of a defcon-bench figure table.
type FigPoint struct {
	X      int                `json:"x"`
	Series map[string]float64 `json:"series"` // series name → value
}

// Snapshot is the emitted document.
type Snapshot struct {
	Commit     string      `json:"commit,omitempty"`
	Goos       string      `json:"goos,omitempty"`
	Goarch     string      `json:"goarch,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
	Figure     string      `json:"figure,omitempty"`
	FigPoints  []FigPoint  `json:"fig_points,omitempty"`
	// Order-book workload series (fills/s per mode), kept separate
	// from the Figure 5 points because the series names coincide.
	OrderBookFigure string     `json:"orderbook_figure,omitempty"`
	OrderBookPoints []FigPoint `json:"orderbook_points,omitempty"`
	// Shard-scaling series (fills/s per mode, x = broker shard
	// count) from `defcon-bench -fig obshard`.
	ObShardFigure string     `json:"obshard_figure,omitempty"`
	ObShardPoints []FigPoint `json:"obshard_points,omitempty"`
	// Market-data fanout series (delivered deltas/s per mode ×
	// conflation, x = subscribers) from `defcon-bench -fig mdfeed`.
	MDFeedFigure string     `json:"mdfeed_figure,omitempty"`
	MDFeedPoints []FigPoint `json:"mdfeed_points,omitempty"`
	// Journal-overhead series (orders/s, "<mode> off" vs "<mode> on",
	// x = traders) from `defcon-bench -fig objournal`.
	ObJournalFigure string     `json:"objournal_figure,omitempty"`
	ObJournalPoints []FigPoint `json:"objournal_points,omitempty"`
	// Ingress-gateway series (orders/s per mode, x = concurrent
	// loopback sessions) from `defcon-bench -fig gateway`.
	GatewayFigure string     `json:"gateway_figure,omitempty"`
	GatewayPoints []FigPoint `json:"gateway_points,omitempty"`
	// Live-rebalance series (fills/s per mode, x = window: before /
	// during / after the hand-off) from `defcon-bench -fig rebalance`.
	RebalanceFigure string     `json:"rebalance_figure,omitempty"`
	RebalancePoints []FigPoint `json:"rebalance_points,omitempty"`
	// Planner series (fills/s, "<mode> off" vs "<mode> on" under a
	// skewed flow, x = flow window) from `defcon-bench -fig planner`.
	PlannerFigure string     `json:"planner_figure,omitempty"`
	PlannerPoints []FigPoint `json:"planner_points,omitempty"`
	// Warnings carries provenance caveats about the snapshot itself —
	// e.g. a shard-scaling sweep that came out flat (single-CPU host),
	// which would otherwise read as a genuine scaling result.
	Warnings []string `json:"warnings,omitempty"`
}

func main() {
	var (
		benchPath          = flag.String("bench", "", "file holding `go test -bench` output (default: stdin)")
		figPath            = flag.String("fig5", "", "optional file holding a defcon-bench figure table")
		figOBPath          = flag.String("figob", "", "optional file holding the defcon-bench order-book table")
		figShardPath       = flag.String("figobshard", "", "optional file holding the defcon-bench shard-scaling table")
		figMDPath          = flag.String("figmdfeed", "", "optional file holding the defcon-bench market-data fanout table")
		figJournalPath     = flag.String("figobjournal", "", "optional file holding the defcon-bench journal-overhead table")
		figGatewayPath     = flag.String("figgateway", "", "optional file holding the defcon-bench ingress-gateway table")
		figRebalancePath   = flag.String("figrebalance", "", "optional file holding the defcon-bench live-rebalance table")
		figPlannerPath     = flag.String("figplanner", "", "optional file holding the defcon-bench planner off/on table")
		outPath            = flag.String("o", "BENCH_dispatch.json", "output JSON path")
		require            = flag.String("require", "", "comma-separated benchmark name substrings that must be present (guards the trajectory against silently dropped benchmarks)")
		reqSeries          = flag.String("require-series", "", "comma-separated figure series names that must be present")
		reqOBSeries        = flag.String("require-ob-series", "", "comma-separated order-book series names that must be present")
		reqShardSeries     = flag.String("require-obshard-series", "", "comma-separated shard-scaling series names that must be present (keeps the bench-snapshot artifact carrying the shard series)")
		reqMDSeries        = flag.String("require-mdfeed-series", "", "comma-separated market-data fanout series names that must be present")
		reqJournalSeries   = flag.String("require-journal-series", "", "comma-separated journal-overhead series names that must be present (keeps the bench-snapshot artifact carrying the journal-on/off comparison)")
		reqGatewaySeries   = flag.String("require-gateway-series", "", "comma-separated ingress-gateway series names that must be present (keeps the bench-snapshot artifact carrying the socket-ingress sweep)")
		reqRebalanceSeries = flag.String("require-rebalance-series", "", "comma-separated live-rebalance series names that must be present (keeps the bench-snapshot artifact carrying the hand-off cost sweep)")
		reqPlannerSeries   = flag.String("require-planner-series", "", "comma-separated planner series names that must be present (keeps the bench-snapshot artifact carrying the planner off/on sweep)")
	)
	flag.Parse()

	snap := Snapshot{Commit: os.Getenv("GITHUB_SHA")}

	var benchSrc *os.File
	if *benchPath == "" {
		benchSrc = os.Stdin
	} else {
		f, err := os.Open(*benchPath)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		benchSrc = f
	}
	if err := parseBench(benchSrc, &snap); err != nil {
		fatal(err)
	}

	if *figPath != "" {
		if snap.Figure, snap.FigPoints = parseFigureFile(*figPath); len(snap.FigPoints) == 0 {
			fatal(fmt.Errorf("no figure points parsed from %s", *figPath))
		}
	}
	if *figOBPath != "" {
		if snap.OrderBookFigure, snap.OrderBookPoints = parseFigureFile(*figOBPath); len(snap.OrderBookPoints) == 0 {
			fatal(fmt.Errorf("no order-book points parsed from %s", *figOBPath))
		}
	}
	if *figShardPath != "" {
		if snap.ObShardFigure, snap.ObShardPoints = parseFigureFile(*figShardPath); len(snap.ObShardPoints) == 0 {
			fatal(fmt.Errorf("no shard-scaling points parsed from %s", *figShardPath))
		}
	}
	if *figMDPath != "" {
		if snap.MDFeedFigure, snap.MDFeedPoints = parseFigureFile(*figMDPath); len(snap.MDFeedPoints) == 0 {
			fatal(fmt.Errorf("no market-data fanout points parsed from %s", *figMDPath))
		}
	}

	if *figJournalPath != "" {
		if snap.ObJournalFigure, snap.ObJournalPoints = parseFigureFile(*figJournalPath); len(snap.ObJournalPoints) == 0 {
			fatal(fmt.Errorf("no journal-overhead points parsed from %s", *figJournalPath))
		}
	}
	if *figGatewayPath != "" {
		if snap.GatewayFigure, snap.GatewayPoints = parseFigureFile(*figGatewayPath); len(snap.GatewayPoints) == 0 {
			fatal(fmt.Errorf("no ingress-gateway points parsed from %s", *figGatewayPath))
		}
	}
	if *figRebalancePath != "" {
		if snap.RebalanceFigure, snap.RebalancePoints = parseFigureFile(*figRebalancePath); len(snap.RebalancePoints) == 0 {
			fatal(fmt.Errorf("no live-rebalance points parsed from %s", *figRebalancePath))
		}
	}
	if *figPlannerPath != "" {
		if snap.PlannerFigure, snap.PlannerPoints = parseFigureFile(*figPlannerPath); len(snap.PlannerPoints) == 0 {
			fatal(fmt.Errorf("no planner points parsed from %s", *figPlannerPath))
		}
	}

	// A shard-scaling sweep that came out flat is a provenance fact,
	// not an error: a single-CPU host runs every pool size at one
	// core's throughput, so the series passes the require guard while
	// demonstrating nothing. Stamp the caveat into the snapshot so a
	// reader of the committed JSON cannot mistake it for a scaling
	// result.
	snap.Warnings = append(snap.Warnings, flatShardWarnings(snap.ObShardPoints)...)

	if err := checkRequired(&snap, *require, *reqSeries, *reqOBSeries, *reqShardSeries, *reqMDSeries, *reqJournalSeries, *reqGatewaySeries, *reqRebalanceSeries, *reqPlannerSeries); err != nil {
		fatal(err)
	}

	out, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		fatal(err)
	}
	out = append(out, '\n')
	if err := os.WriteFile(*outPath, out, 0o644); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d benchmarks, %d figure points to %s\n",
		len(snap.Benchmarks), len(snap.FigPoints), *outPath)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}

// checkRequired fails the conversion when an expected benchmark or
// figure series is missing from the snapshot: a renamed or dropped
// benchmark would otherwise silently vanish from the perf trajectory.
func checkRequired(snap *Snapshot, benches, series, obSeries, shardSeries, mdSeries, journalSeries, gatewaySeries, rebalanceSeries, plannerSeries string) error {
	for _, want := range splitCSV(benches) {
		found := false
		for _, b := range snap.Benchmarks {
			if benchMatches(b.Name, want) {
				found = true
				break
			}
		}
		if !found {
			return fmt.Errorf("required benchmark %q missing from input", want)
		}
	}
	if err := requireSeries(snap.FigPoints, series, "figure"); err != nil {
		return err
	}
	if err := requireSeries(snap.OrderBookPoints, obSeries, "order-book"); err != nil {
		return err
	}
	if err := requireSeries(snap.ObShardPoints, shardSeries, "shard-scaling"); err != nil {
		return err
	}
	if err := requireSeries(snap.MDFeedPoints, mdSeries, "market-data fanout"); err != nil {
		return err
	}
	if err := requireSeries(snap.ObJournalPoints, journalSeries, "journal-overhead"); err != nil {
		return err
	}
	if err := requireSeries(snap.GatewayPoints, gatewaySeries, "ingress-gateway"); err != nil {
		return err
	}
	if err := requireSeries(snap.RebalancePoints, rebalanceSeries, "live-rebalance"); err != nil {
		return err
	}
	return requireSeries(snap.PlannerPoints, plannerSeries, "planner")
}

// flatShardRatio is the spread below which a shard-scaling series is
// called flat: max/min < 1.25 across shard counts means no meaningful
// scaling. Deliberately loose — noisy single-CPU runs show spreads up
// to ~20% with no scaling behind them, and a genuinely scaling pool
// roughly doubles between its smallest and largest size.
const flatShardRatio = 1.25

// flatShardWarnings inspects the shard-scaling points and returns one
// provenance warning per series whose throughput stays flat across
// two or more distinct shard counts.
func flatShardWarnings(points []FigPoint) []string {
	type span struct {
		min, max float64
		xs       map[int]bool
	}
	spans := map[string]*span{}
	var order []string
	for _, pt := range points {
		for name, v := range pt.Series {
			s, ok := spans[name]
			if !ok {
				s = &span{min: v, max: v, xs: map[int]bool{}}
				spans[name] = s
				order = append(order, name)
			}
			if v < s.min {
				s.min = v
			}
			if v > s.max {
				s.max = v
			}
			s.xs[pt.X] = true
		}
	}
	sort.Strings(order)
	var warns []string
	for _, name := range order {
		s := spans[name]
		if len(s.xs) < 2 || s.min <= 0 {
			continue
		}
		if s.max/s.min < flatShardRatio {
			warns = append(warns, fmt.Sprintf(
				"obshard series %q is flat across %d shard counts (max/min %.2f < %.2f): no scaling demonstrated — likely a single-CPU host",
				name, len(s.xs), s.max/s.min, flatShardRatio))
		}
	}
	return warns
}

// requireSeries checks each named series appears in at least one point.
func requireSeries(points []FigPoint, series, what string) error {
	for _, want := range splitCSV(series) {
		found := false
		for _, pt := range points {
			if _, ok := pt.Series[want]; ok {
				found = true
				break
			}
		}
		if !found {
			return fmt.Errorf("required %s series %q missing from input", what, want)
		}
	}
	return nil
}

// benchMatches reports whether a result line's name (e.g.
// "BenchmarkAPITaxWarm-8" or "BenchmarkPublish/labels-8") names the
// required benchmark exactly, counting sub-benchmarks of it. Exact
// matching — not substring — so "APITaxWarm" is not satisfied by a
// surviving "APITaxWarmBatch" when the warm benchmark itself is
// dropped.
func benchMatches(name, want string) bool {
	base := strings.TrimPrefix(name, "Benchmark")
	// Strip the trailing -GOMAXPROCS suffix go test appends.
	if i := strings.LastIndex(base, "-"); i >= 0 {
		if _, err := strconv.Atoi(base[i+1:]); err == nil {
			base = base[:i]
		}
	}
	want = strings.TrimPrefix(want, "Benchmark")
	return base == want || strings.HasPrefix(base, want+"/")
}

// splitCSV splits a comma-separated flag value, dropping empties.
func splitCSV(s string) []string {
	var out []string
	for _, f := range strings.Split(s, ",") {
		if f = strings.TrimSpace(f); f != "" {
			out = append(out, f)
		}
	}
	return out
}

// parseBench consumes `go test -bench` output: metadata lines
// (goos/goarch/cpu) and result lines of the form
//
//	BenchmarkName-8   1234567   272.9 ns/op   0 B/op   0 allocs/op
func parseBench(src *os.File, snap *Snapshot) error {
	sc := bufio.NewScanner(src)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			snap.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
			continue
		case strings.HasPrefix(line, "goarch:"):
			snap.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
			continue
		case strings.HasPrefix(line, "cpu:"):
			snap.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
			continue
		case !strings.HasPrefix(line, "Benchmark"):
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 4 {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		b := Benchmark{Name: fields[0], Iterations: iters, Metrics: map[string]float64{}}
		// The remainder alternates value/unit.
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				break
			}
			b.Metrics[fields[i+1]] = v
		}
		snap.Benchmarks = append(snap.Benchmarks, b)
	}
	return sc.Err()
}

// parseFigureFile opens and parses one defcon-bench table file.
func parseFigureFile(path string) (string, []FigPoint) {
	f, err := os.Open(path)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	figure, points, err := parseFigure(f)
	if err != nil {
		fatal(err)
	}
	return figure, points
}

// parseFigure consumes a defcon-bench table:
//
//	# Figure 5 — caption
//	x          series-a    series-b   (unit)
//	100        59680.51    61993.43
func parseFigure(src *os.File) (string, []FigPoint, error) {
	sc := bufio.NewScanner(src)
	var figure string
	var points []FigPoint
	var names []string
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case line == "":
			continue
		case strings.HasPrefix(line, "#"):
			figure = strings.TrimSpace(strings.TrimPrefix(line, "#"))
			continue
		case strings.HasPrefix(line, "x"):
			names = parseHeader(sc.Text())
			continue
		}
		fields := strings.Fields(line)
		if len(names) == 0 || len(fields) < 2 {
			continue
		}
		x, err := strconv.Atoi(fields[0])
		if err != nil {
			continue
		}
		pt := FigPoint{X: x, Series: map[string]float64{}}
		for i, f := range fields[1:] {
			if i >= len(names) {
				break
			}
			if v, err := strconv.ParseFloat(f, 64); err == nil {
				pt.Series[names[i]] = v
			}
		}
		points = append(points, pt)
	}
	return figure, points, sc.Err()
}

// parseHeader recovers the series names from the header row emitted
// by bench.Result.Format: names are right-aligned in columns wide
// enough that consecutive names are separated by at least two spaces
// (a name itself may contain a single space, e.g. "no security").
func parseHeader(row string) []string {
	rest := strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(row), "x"))
	if i := strings.LastIndex(rest, "("); i >= 0 {
		rest = rest[:i]
	}
	var names []string
	for _, cell := range splitOnRuns(rest) {
		if cell != "" {
			names = append(names, cell)
		}
	}
	return names
}

// splitOnRuns splits on runs of two or more spaces.
func splitOnRuns(s string) []string {
	var out []string
	for _, chunk := range strings.Split(s, "  ") {
		chunk = strings.TrimSpace(chunk)
		if chunk != "" {
			out = append(out, chunk)
		}
	}
	return out
}
