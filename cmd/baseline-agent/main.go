// Command baseline-agent is a standalone Strategy Agent for the
// Marketcetera-like baseline (§6): one per client, each in its own OS
// process, mirroring the paper's one-JVM-per-client deployment.
//
// It is normally spawned by the baseline harness (which sets the
// DEFCON_BASELINE_ADDR / DEFCON_BASELINE_SPEC environment variables),
// but can be pointed at a running ORS by hand:
//
//	DEFCON_BASELINE_ADDR=127.0.0.1:4567 \
//	DEFCON_BASELINE_SPEC='0|SYM000A|SYM000B|10000|5000|bid|200' \
//	baseline-agent
package main

import (
	"fmt"
	"os"

	"repro/internal/baseline"
)

func main() {
	baseline.MaybeRunAgent() // exits the process when env is set
	fmt.Fprintln(os.Stderr,
		"baseline-agent: set DEFCON_BASELINE_ADDR and DEFCON_BASELINE_SPEC (see package doc)")
	os.Exit(2)
}
